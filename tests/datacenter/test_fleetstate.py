"""View-contract tests for the structure-of-arrays fleet state.

:class:`~repro.datacenter.fleetstate.FleetState` owns fleet truth in
contiguous arrays; ``Server``/``Vm``/``ServerThermalModel`` are thin
views once a cluster registers them. These tests pin the contract from
both directions — mutating through a view must be visible in the arrays,
and writing the arrays must be visible through the view — including
mid-migration lifecycle state and fan retunes, plus the committed
capacity counters staying bit-identical to re-summing the VM dict.
"""

import numpy as np
import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.resources import ResourceCapacity
from repro.datacenter.server import Server, ServerSpec
from repro.datacenter.vm import RUNNING_CODES, STATE_CODES, Vm, VmSpec, VmState
from repro.datacenter.workload import ConstantTask, PeriodicTask
from repro.errors import SimulationError
from repro.rng import RngFactory


def make_server(name: str, cores: int = 16, memory_gb: float = 64.0) -> Server:
    return Server(
        ServerSpec(
            name=name,
            capacity=ResourceCapacity(
                cpu_cores=cores, ghz_per_core=2.4, memory_gb=memory_gb
            ),
        )
    )


def make_vm(name: str, vcpus: int = 2, memory_gb: float = 4.0) -> Vm:
    return Vm(
        VmSpec(
            name=name,
            vcpus=vcpus,
            memory_gb=memory_gb,
            tasks=(ConstantTask(level=0.5),),
        )
    )


@pytest.fixture()
def bound_cluster():
    """Two registered servers, one hosted VM each."""
    cluster = Cluster("view")
    for i in range(2):
        server = make_server(f"s{i}")
        server.host_vm(make_vm(f"vm{i}"), time_s=float(i))
        cluster.add_server(server)
    return cluster


class TestServerViewContract:
    def test_registration_binds_server_and_snapshots_capacity(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s0 = bound_cluster.server("s0")
        assert s0._fs is fs and s0._slot == 0
        assert fs.n_servers == 2
        assert fs.memory_capacity_gb[0] == 64.0
        assert fs.cores[0] == 16.0
        # Pre-registration hosting carried into the arrays.
        assert fs.used_memory_gb[0] == 4.0
        assert fs.used_vcpus[0] == 2
        assert fs.n_running[0] == 1

    def test_host_vm_through_view_updates_arrays(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s0 = bound_cluster.server("s0")
        s0.host_vm(make_vm("extra", vcpus=3, memory_gb=8.0), time_s=10.0)
        assert fs.used_vcpus[0] == 5
        assert fs.used_memory_gb[0] == 12.0
        assert fs.n_running[0] == 2
        slot = fs.vm_index["extra"]
        assert fs.vm_server[slot] == 0
        assert fs.vm_state_code[slot] == STATE_CODES[VmState.RUNNING]
        assert fs.vm_started_at_s[slot] == 10.0

    def test_remove_vm_through_view_updates_arrays(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s0 = bound_cluster.server("s0")
        vm = s0.remove_vm("vm0")
        assert fs.used_vcpus[0] == 0
        assert fs.used_memory_gb[0] == 0.0
        assert fs.vm_server[fs.vm_index["vm0"]] == -1
        assert vm.name == "vm0"

    def test_array_write_visible_through_view(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s1 = bound_cluster.server("s1")
        fs.used_vcpus[1] = 7
        fs.used_memory_gb[1] = 31.5
        assert s1.used_vcpus == 7
        assert s1.used_memory_gb == 31.5

    def test_active_migrations_roundtrip(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s0 = bound_cluster.server("s0")
        s0.active_migrations += 1
        assert fs.active_migrations[0] == 1
        fs.active_migrations[0] = 3
        assert s0.active_migrations == 3


class TestVmViewContract:
    def test_state_setter_writes_code(self, bound_cluster):
        fs = bound_cluster.fleet_state
        vm, _ = bound_cluster.find_vm("vm0")
        slot = fs.vm_index["vm0"]
        vm.begin_migration()
        assert fs.vm_state_code[slot] == STATE_CODES[VmState.MIGRATING]
        # MIGRATING still counts as running for load/overhead purposes.
        assert fs.vm_state_code[slot] in RUNNING_CODES
        assert fs.n_running[0] == 1

    def test_code_write_visible_through_view(self, bound_cluster):
        fs = bound_cluster.fleet_state
        vm, _ = bound_cluster.find_vm("vm1")
        fs.vm_state_code[fs.vm_index["vm1"]] = STATE_CODES[VmState.TERMINATED]
        assert vm.state is VmState.TERMINATED

    def test_mid_migration_attach_and_complete(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s0 = bound_cluster.server("s0")
        s1 = bound_cluster.server("s1")
        vm = s0.remove_vm("vm0")
        vm.begin_migration()
        slot = fs.vm_index["vm0"]
        # In transit: MIGRATING, owned by no server.
        assert fs.vm_state_code[slot] == STATE_CODES[VmState.MIGRATING]
        assert fs.vm_server[slot] == -1
        assert fs.n_running[0] == 0
        # Attach completes the migration on the destination.
        s1.attach_migrating_vm(vm)
        assert fs.vm_server[slot] == 1
        assert fs.vm_state_code[slot] == STATE_CODES[VmState.RUNNING]
        assert fs.n_running[1] == 2
        assert vm.host_name == "s1"

    def test_terminated_vm_keeps_slot_and_committed_capacity(self, bound_cluster):
        fs = bound_cluster.fleet_state
        vm, s0 = bound_cluster.find_vm("vm0")
        vm.terminate()
        slot = fs.vm_index["vm0"]
        # Terminated VMs stay in the dict and keep committed capacity
        # (the admission model bills until the VM is removed).
        assert "vm0" in s0.vms
        assert fs.vm_server[slot] == 0
        assert fs.n_running[0] == 0
        assert s0.used_memory_gb == 4.0

    def test_started_at_roundtrip(self, bound_cluster):
        fs = bound_cluster.fleet_state
        vm, _ = bound_cluster.find_vm("vm0")
        vm.started_at_s = 123.5
        assert fs.vm_started_at_s[fs.vm_index["vm0"]] == 123.5
        fs.vm_started_at_s[fs.vm_index["vm0"]] = 7.25
        assert vm.started_at_s == 7.25


class TestThermalViewContract:
    def test_fan_retune_updates_arrays(self, bound_cluster):
        fs = bound_cluster.fleet_state
        s0 = bound_cluster.server("s0")
        before_gen = fs.generation
        s0.set_fan_speed(0.95)
        assert fs.fan_speed[0] == 0.95
        assert fs.generation > before_gen
        # Effective case resistance and fan power re-derived from the
        # retuned bank — the quantities the vectorized engine integrates.
        assert fs.r_case_eff[0] == s0.thermal._case_resistance()
        assert fs.p_case_fan_w[0] == s0.fans.power_w()

        s0.set_fan_count(6)
        assert fs.fan_count[0] == 6.0
        assert fs.r_case_eff[0] == s0.thermal._case_resistance()
        assert fs.p_case_fan_w[0] == s0.fans.power_w()

    def test_set_temperatures_roundtrip(self, bound_cluster):
        fs = bound_cluster.fleet_state
        plant = bound_cluster.server("s1").thermal
        plant.set_temperatures(55.0, 40.0)
        assert fs.t_cpu_c[1] == 55.0 and fs.t_case_c[1] == 40.0
        fs.t_cpu_c[1] = 61.25
        assert plant.cpu_temperature_c == 61.25

    def test_plant_step_reads_and_writes_arrays(self, bound_cluster):
        fs = bound_cluster.fleet_state
        plant = bound_cluster.server("s0").thermal
        fs.t_cpu_c[0] = 48.0
        fs.t_case_c[0] = 33.0
        plant.step(dt_s=1.0, utilization=0.5, ambient_c=22.0)
        assert fs.t_cpu_c[0] != 48.0  # integrated from the array state
        assert plant.cpu_temperature_c == fs.t_cpu_c[0]
        assert plant.time_s == 1.0
        assert fs.plant_time_s[0] == 1.0


class TestCommittedCounters:
    def test_counters_match_resummed_dict_bitwise(self):
        """Random arrivals/removals/terminations: committed counters are
        bit-identical to re-summing ``server.vms`` at every step."""
        rng = RngFactory(1234).stream("fleetstate/counters")
        cluster = Cluster("counters")
        servers = [make_server(f"s{i}", cores=32, memory_gb=256.0) for i in range(4)]
        for server in servers:
            cluster.add_server(server)
        counter = 0
        for _ in range(200):
            server = servers[rng.randint(0, len(servers) - 1)]
            action = rng.random()
            if action < 0.5 or not server.vms:
                vm = make_vm(
                    f"v{counter}",
                    vcpus=rng.randint(1, 4),
                    memory_gb=rng.choice([1.5, 2.0, 4.0, 7.25]),
                )
                counter += 1
                if server.can_host(vm):
                    server.host_vm(vm, time_s=float(counter))
            elif action < 0.75:
                name = list(server.vms)[rng.randint(0, len(server.vms) - 1)]
                server.remove_vm(name)
            else:
                name = list(server.vms)[rng.randint(0, len(server.vms) - 1)]
                if server.vms[name].state is not VmState.TERMINATED:
                    server.vms[name].terminate()
            for s in servers:
                expected_mem = sum(v.spec.memory_gb for v in s.vms.values())
                expected_vcpus = sum(v.spec.vcpus for v in s.vms.values())
                assert s.used_memory_gb == expected_mem
                assert s.used_vcpus == expected_vcpus

    def test_unbound_server_matches_bound_counters(self):
        """A server never registered with a cluster keeps identical
        committed counters through the same mutation sequence, and both
        bump the placement generation on every membership change (the
        absolute values may differ — bound bumps are more conservative)."""
        bound = make_server("b")
        unbound = make_server("u")
        Cluster("one").add_server(bound)

        def exercise(server: Server) -> list[tuple[float, int]]:
            trace = []
            vms = [make_vm(f"x{i}", vcpus=1 + i % 3, memory_gb=2.0 + i) for i in range(6)]
            generation = server.placement_generation
            for i, vm in enumerate(vms):
                server.host_vm(vm, time_s=float(i))
                assert server.placement_generation > generation
                generation = server.placement_generation
                trace.append((server.used_memory_gb, server.used_vcpus))
            vms[1].terminate()
            for name in ("x3", "x0"):
                server.remove_vm(name)
                assert server.placement_generation > generation
                generation = server.placement_generation
            trace.append((server.used_memory_gb, server.used_vcpus))
            return trace

        assert exercise(bound) == exercise(unbound)


class TestPlacementGeneration:
    def test_bumps_on_membership_changes(self, bound_cluster):
        s0 = bound_cluster.server("s0")
        g0 = s0.placement_generation
        s0.host_vm(make_vm("g1"), time_s=0.0)
        g1 = s0.placement_generation
        assert g1 > g0
        s0.remove_vm("g1")
        assert s0.placement_generation > g1

    def test_no_bump_on_running_migrating_transition(self, bound_cluster):
        """RUNNING ↔ MIGRATING keeps the running count — the overhead and
        demand inputs are unchanged, so no rebuild is forced."""
        fs = bound_cluster.fleet_state
        vm, _ = bound_cluster.find_vm("vm0")
        before = fs.placement_generation
        vm.begin_migration()
        vm.complete_migration("s0")
        assert fs.placement_generation == before

    def test_bump_on_terminate(self, bound_cluster):
        fs = bound_cluster.fleet_state
        vm, _ = bound_cluster.find_vm("vm0")
        before = fs.placement_generation
        vm.terminate()
        assert fs.placement_generation > before


class TestFindVm:
    def test_fast_path_matches_scan(self, bound_cluster):
        vm, server = bound_cluster.find_vm("vm1")
        assert vm.name == "vm1" and server.name == "s1"
        with pytest.raises(SimulationError):
            bound_cluster.find_vm("nope")

    def test_unhosted_vm_raises(self, bound_cluster):
        s0 = bound_cluster.server("s0")
        s0.remove_vm("vm0")
        with pytest.raises(SimulationError):
            bound_cluster.find_vm("vm0")

    def test_duplicate_names_fall_back_to_scan(self):
        cluster = Cluster("dup")
        a, b = make_server("a"), make_server("b")
        cluster.add_server(a)
        cluster.add_server(b)
        a.host_vm(make_vm("twin"), time_s=0.0)
        b.host_vm(make_vm("twin"), time_s=0.0)
        assert not cluster.fleet_state.vm_names_unique
        vm, server = cluster.find_vm("twin")
        assert server.name == "a"  # scan order: first hosting server wins


class TestCoversAndForeign:
    def test_covers_true_for_registered_cluster(self, bound_cluster):
        fs = bound_cluster.fleet_state
        assert fs.covers(list(bound_cluster.servers))

    def test_foreign_server_detected(self, bound_cluster):
        other = Cluster("other")
        shared = make_server("shared")
        other.add_server(shared)
        bound_cluster.add_server(shared)  # already bound elsewhere
        assert bound_cluster.foreign_servers == ["shared"]
        fs = bound_cluster.fleet_state
        assert not fs.covers(list(bound_cluster.servers))

    def test_covers_false_after_plant_swap(self, bound_cluster):
        class CustomPlant:
            pass

        bound_cluster.server("s0").thermal = CustomPlant()
        assert not bound_cluster.fleet_state.covers(list(bound_cluster.servers))


class TestTaskArrays:
    def test_task_arrays_cached_until_generation_moves(self, bound_cluster):
        fs = bound_cluster.fleet_state
        first = fs.task_arrays()
        assert fs.task_arrays() is first
        s0 = bound_cluster.server("s0")
        s0.host_vm(
            Vm(
                VmSpec(
                    name="tasky",
                    vcpus=2,
                    memory_gb=2.0,
                    tasks=(PeriodicTask(mean=0.4, amplitude=0.1, period_s=60.0),),
                )
            ),
            time_s=0.0,
        )
        second = fs.task_arrays()
        assert second is not first
        assert second.per_vm.size == first.per_vm.size + 1

    def test_slot_space_indices_point_at_vm_slots(self, bound_cluster):
        fs = bound_cluster.fleet_state
        tasks = fs.task_arrays()
        # Both fixture VMs carry one ConstantTask each, indexed by slot.
        assert np.array_equal(np.sort(tasks.const_vm), np.arange(fs.n_vms))
