"""Unit tests for the discrete-event engine."""

import pytest

from repro.datacenter.events import EventQueue, FunctionEvent
from repro.errors import SimulationError


def noop(_sim):
    pass


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(FunctionEvent(30.0, noop, "c"))
        queue.push(FunctionEvent(10.0, noop, "a"))
        queue.push(FunctionEvent(20.0, noop, "b"))
        labels = [queue.pop().label for _ in range(3)]
        assert labels == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for label in ("first", "second", "third"):
            queue.push(FunctionEvent(5.0, noop, label))
        labels = [queue.pop().label for _ in range(3)]
        assert labels == ["first", "second", "third"]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(FunctionEvent(42.0, noop))
        assert queue.peek_time() == 42.0

    def test_pop_due_takes_only_due_events(self):
        queue = EventQueue()
        queue.push(FunctionEvent(1.0, noop, "due1"))
        queue.push(FunctionEvent(2.0, noop, "due2"))
        queue.push(FunctionEvent(3.0, noop, "later"))
        due = queue.pop_due(2.0)
        assert [e.label for e in due] == ["due1", "due2"]
        assert len(queue) == 1

    def test_pop_due_includes_events_at_now_with_tolerance(self):
        queue = EventQueue()
        queue.push(FunctionEvent(2.0, noop, "exact"))
        assert [e.label for e in queue.pop_due(2.0)] == ["exact"]


class TestContainerBehaviour:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(FunctionEvent(1.0, noop))
        assert queue
        assert len(queue) == 1

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_event_time_rejected(self):
        with pytest.raises(SimulationError):
            FunctionEvent(-1.0, noop)


class TestFunctionEvent:
    def test_apply_invokes_action(self):
        calls = []
        event = FunctionEvent(0.0, lambda sim: calls.append(sim), "probe")
        event.apply("fake-sim")
        assert calls == ["fake-sim"]

    def test_describe_mentions_label(self):
        assert "probe" in FunctionEvent(0.0, noop, "probe").describe()
