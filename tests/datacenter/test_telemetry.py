"""Unit tests for the telemetry pipeline."""

import pytest

from repro.datacenter.telemetry import TelemetryCollector, TimeSeries
from repro.errors import TelemetryError


class TestTimeSeries:
    def test_append_and_len(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2
        assert series.times == [0.0, 1.0]
        assert series.values == [1.0, 2.0]

    def test_non_monotonic_time_rejected(self):
        series = TimeSeries("x")
        series.append(5.0, 1.0)
        with pytest.raises(TelemetryError):
            series.append(4.0, 2.0)

    def test_window_is_half_open(self):
        series = TimeSeries("x")
        for t in range(10):
            series.append(float(t), float(t))
        window = series.window(2.0, 5.0)
        assert window.times == [2.0, 3.0, 4.0]

    def test_mean_over_window(self):
        series = TimeSeries("x")
        for t in range(10):
            series.append(float(t), float(t))
        assert series.mean(2.0, 5.0) == pytest.approx(3.0)

    def test_mean_of_empty_window_rejected(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        with pytest.raises(TelemetryError):
            series.mean(5.0, 6.0)

    def test_value_at_interpolates(self):
        series = TimeSeries("x")
        series.append(0.0, 10.0)
        series.append(10.0, 20.0)
        assert series.value_at(5.0) == pytest.approx(15.0)

    def test_value_at_clamps_at_ends(self):
        series = TimeSeries("x")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert series.value_at(0.0) == 10.0
        assert series.value_at(5.0) == 20.0

    def test_value_at_empty_rejected(self):
        with pytest.raises(TelemetryError):
            TimeSeries("x").value_at(0.0)

    def test_last_before(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(10.0, 2.0)
        assert series.last_before(9.9) == (0.0, 1.0)
        assert series.last_before(10.0) == (10.0, 2.0)

    def test_last_before_start_rejected(self):
        series = TimeSeries("x")
        series.append(5.0, 1.0)
        with pytest.raises(TelemetryError):
            series.last_before(4.0)


class TestCollector:
    def test_server_bundles_created_on_demand(self):
        collector = TelemetryCollector()
        bundle = collector.for_server("s1")
        assert bundle.server_name == "s1"
        assert collector.server_names == ["s1"]

    def test_same_bundle_returned(self):
        collector = TelemetryCollector()
        assert collector.for_server("s1") is collector.for_server("s1")

    def test_environment_feed(self):
        collector = TelemetryCollector()
        collector.record_environment(0.0, 22.0)
        collector.record_environment(1.0, 22.5)
        assert collector.environment.values == [22.0, 22.5]

    def test_event_log(self):
        collector = TelemetryCollector()
        collector.log_event(5.0, "migration started")
        assert collector.event_log == [(5.0, "migration started")]

    def test_stable_cpu_temperature_implements_eq1(self):
        collector = TelemetryCollector()
        series = collector.for_server("s1").cpu_temperature
        # Rising then stable at 60; t_break=5 cuts off the rise.
        for t, v in [(0, 30.0), (2, 45.0), (4, 55.0), (6, 60.0), (8, 60.5), (10, 59.5)]:
            series.append(float(t), v)
        psi = collector.stable_cpu_temperature("s1", t_break_s=5.0, t_exp_s=10.0)
        assert psi == pytest.approx(60.0)

    def test_stable_cpu_temperature_without_samples_rejected(self):
        collector = TelemetryCollector()
        with pytest.raises(TelemetryError):
            collector.stable_cpu_temperature("s1", 5.0, 10.0)


class TestBatchAndArrayApi:
    def test_extend_appends_batch(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.extend([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
        assert series.times == [0.0, 1.0, 2.0, 3.0]
        assert series.values == [1.0, 10.0, 20.0, 30.0]

    def test_extend_rejects_nonmonotonic_batch(self):
        series = TimeSeries("x")
        with pytest.raises(TelemetryError):
            series.extend([0.0, 2.0, 1.0], [1.0, 2.0, 3.0])

    def test_extend_rejects_batch_before_existing_tail(self):
        series = TimeSeries("x")
        series.append(5.0, 1.0)
        with pytest.raises(TelemetryError):
            series.extend([1.0, 2.0], [1.0, 2.0])

    def test_extend_rejects_length_mismatch(self):
        with pytest.raises(TelemetryError):
            TimeSeries("x").extend([1.0, 2.0], [1.0])

    def test_arrays_are_copies(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        arr = series.values_array()
        arr[0] = 99.0
        assert series.values == [1.0]

    def test_last(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(2.0, 3.0)
        assert series.last() == (2.0, 3.0)
        with pytest.raises(TelemetryError):
            TimeSeries("y").last()

    def test_growth_beyond_initial_capacity(self):
        series = TimeSeries("x")
        for i in range(1000):
            series.append(float(i), float(i) * 2.0)
        assert len(series) == 1000
        assert series.values[-1] == 1998.0
        assert series.value_at(500.5) == pytest.approx(1001.0)


class TestFleetColumns:
    def _record(self, collector, times, names):
        import numpy as np

        for k, t in enumerate(times):
            collector.record_fleet_step(
                t,
                names,
                np.full(len(names), 0.1 * (k + 1)),
                np.full(len(names), 2.0),
                np.full(len(names), 4.0),
                np.full(len(names), 0.7),
            )

    def test_columns_flushed_on_read(self):
        collector = TelemetryCollector()
        names = ["a", "b"]
        self._record(collector, [1.0, 2.0, 3.0], names)
        bundle = collector.for_server("a")
        assert bundle.utilization.times == [1.0, 2.0, 3.0]
        assert bundle.utilization.values == pytest.approx([0.1, 0.2, 0.3])
        assert collector.for_server("b").vm_count.values == [2.0, 2.0, 2.0]

    def test_server_names_flushes(self):
        collector = TelemetryCollector()
        self._record(collector, [1.0], ["a", "b"])
        assert collector.server_names == ["a", "b"]

    def test_cpu_columns_interleave_with_steps(self):
        import numpy as np

        collector = TelemetryCollector()
        names = ["a", "b"]
        self._record(collector, [1.0], names)
        collector.record_fleet_cpu_samples(1.0, names, np.array([55.0, 60.0]))
        self._record(collector, [2.0], names)
        collector.record_fleet_cpu_samples(2.0, names, np.array([56.0, 61.0]))
        cpu = collector.for_server("b").cpu_temperature
        assert cpu.times == [1.0, 2.0]
        assert cpu.values == [60.0, 61.0]

    def test_membership_change_forces_flush_boundary(self):
        collector = TelemetryCollector()
        self._record(collector, [1.0], ["a", "b"])
        self._record(collector, [2.0], ["a", "c"])
        assert collector.for_server("b").utilization.times == [1.0]
        assert collector.for_server("c").utilization.times == [2.0]
        assert collector.for_server("a").utilization.times == [1.0, 2.0]

    def test_mixed_direct_append_and_columns(self):
        import numpy as np

        collector = TelemetryCollector()
        names = ["a"]
        self._record(collector, [1.0], names)
        collector.record_fleet_cpu_samples(1.0, names, np.array([50.0]))
        # A direct append (partial-due fallback) must not reorder behind
        # buffered columns.
        collector.append_cpu_sample("a", 2.0, 51.0)
        self._record(collector, [3.0], names)
        collector.record_fleet_cpu_samples(3.0, names, np.array([52.0]))
        cpu = collector.for_server("a").cpu_temperature
        assert cpu.times == [1.0, 2.0, 3.0]
        assert cpu.values == [50.0, 51.0, 52.0]
