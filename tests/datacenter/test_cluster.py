"""Unit tests for the cluster container."""

import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.errors import ConfigurationError, SimulationError
from tests.conftest import make_server_spec, make_vm


def make_cluster(n: int = 3) -> Cluster:
    cluster = Cluster("test")
    for i in range(n):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")), rack=f"rack-{i % 2}")
    return cluster


class TestMembership:
    def test_add_and_lookup(self):
        cluster = make_cluster()
        assert cluster.server("s1").name == "s1"
        assert len(cluster) == 3

    def test_duplicate_server_rejected(self):
        cluster = make_cluster(1)
        with pytest.raises(SimulationError):
            cluster.add_server(Server(make_server_spec(name="s0")))

    def test_unknown_server_rejected(self):
        with pytest.raises(SimulationError):
            make_cluster().server("nope")

    def test_rack_assignment(self):
        cluster = make_cluster(3)
        racks = cluster.racks()
        assert racks["rack-0"] == ["s0", "s2"]
        assert racks["rack-1"] == ["s1"]
        assert cluster.rack_of("s2") == "rack-0"

    def test_rack_of_unknown_server_rejected(self):
        with pytest.raises(SimulationError):
            make_cluster().rack_of("nope")

    def test_empty_cluster_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster("")


class TestVmLookup:
    def test_find_vm_returns_host(self):
        cluster = make_cluster()
        vm = make_vm("target")
        cluster.server("s1").host_vm(vm)
        found, host = cluster.find_vm("target")
        assert found is vm
        assert host.name == "s1"

    def test_find_missing_vm_rejected(self):
        with pytest.raises(SimulationError):
            make_cluster().find_vm("ghost")

    def test_all_vms_spans_servers(self):
        cluster = make_cluster()
        cluster.server("s0").host_vm(make_vm("a"))
        cluster.server("s2").host_vm(make_vm("b"))
        names = {vm.name for vm in cluster.all_vms()}
        assert names == {"a", "b"}


class TestAggregates:
    def test_totals(self):
        cluster = make_cluster(2)
        assert cluster.total_cores() == 32
        assert cluster.total_memory_gb() == pytest.approx(128.0)

    def test_peak_and_spread(self):
        cluster = make_cluster(2)
        cluster.server("s0").thermal.set_temperatures(70.0, 40.0)
        cluster.server("s1").thermal.set_temperatures(50.0, 35.0)
        assert cluster.peak_cpu_temperature_c() == pytest.approx(70.0)
        assert cluster.temperature_spread_c() == pytest.approx(20.0)

    def test_empty_cluster_aggregates_rejected(self):
        empty = Cluster("empty")
        with pytest.raises(SimulationError):
            empty.peak_cpu_temperature_c()
        with pytest.raises(SimulationError):
            empty.temperature_spread_c()
