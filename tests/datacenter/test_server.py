"""Unit tests for the server runtime."""

import pytest

from repro.datacenter.server import Server
from repro.errors import CapacityError, ConfigurationError, SimulationError
from tests.conftest import make_server_spec, make_vm


class TestCapacity:
    def test_memory_is_hard_constraint(self, server):
        big = make_vm("big", memory_gb=65.0)
        assert not server.can_host(big)
        with pytest.raises(CapacityError):
            server.host_vm(big)

    def test_vcpu_overcommit_allowed_to_ratio(self, server):
        # 16 cores × 2.0 overcommit = 32 vCPUs allowed.
        for i in range(4):
            server.host_vm(make_vm(f"v{i}", vcpus=8, memory_gb=4.0))
        assert server.used_vcpus == 32
        assert not server.can_host(make_vm("extra", vcpus=1, memory_gb=1.0))

    def test_free_memory_accounting(self, server):
        server.host_vm(make_vm("a", memory_gb=10.0))
        server.host_vm(make_vm("b", memory_gb=6.0))
        assert server.used_memory_gb == pytest.approx(16.0)
        assert server.free_memory_gb == pytest.approx(48.0)

    def test_removal_frees_capacity(self, server):
        server.host_vm(make_vm("a", memory_gb=10.0))
        server.remove_vm("a")
        assert server.free_memory_gb == pytest.approx(64.0)


class TestLifecycleIntegration:
    def test_host_vm_starts_it(self, server):
        vm = make_vm("a")
        server.host_vm(vm, time_s=5.0)
        assert vm.host_name == server.name
        assert vm.started_at_s == 5.0

    def test_duplicate_name_rejected(self, server):
        server.host_vm(make_vm("a"))
        with pytest.raises(SimulationError):
            server.host_vm(make_vm("a"))

    def test_remove_unknown_vm_rejected(self, server):
        with pytest.raises(SimulationError):
            server.remove_vm("ghost")

    def test_attach_migrating_vm(self, server):
        vm = make_vm("a")
        vm.start("elsewhere", 0.0)
        vm.begin_migration()
        server.attach_migrating_vm(vm)
        assert vm.host_name == server.name
        assert "a" in server.vms

    def test_running_vms_excludes_terminated(self, server):
        vm = make_vm("a")
        server.host_vm(vm)
        vm.terminate()
        assert server.running_vms() == []


class TestLoadAndThermal:
    def test_current_load_reflects_vm_demand(self, server):
        server.host_vm(make_vm("a", vcpus=8, level=1.0, n_tasks=8))
        load = server.current_load(10.0)
        assert load.utilization > 0.45  # 8 busy vCPUs on 16 cores + overhead

    def test_step_thermal_heats_under_load(self, server):
        server.host_vm(make_vm("a", vcpus=8, level=1.0, n_tasks=8))
        start = server.thermal.cpu_temperature_c
        for t in range(300):
            server.step_thermal(1.0, float(t), ambient_c=22.0)
        assert server.thermal.cpu_temperature_c > start + 5.0

    def test_fan_speed_change_propagates_to_plant(self, server):
        before = server.thermal.steady_state_cpu_temperature(0.8, 22.0)
        server.set_fan_speed(1.0)
        after = server.thermal.steady_state_cpu_temperature(0.8, 22.0)
        assert after < before
        assert server.fans.speed == 1.0

    def test_fan_count_change_propagates_to_plant(self, server):
        before = server.thermal.steady_state_cpu_temperature(0.8, 22.0)
        server.set_fan_count(8)
        after = server.thermal.steady_state_cpu_temperature(0.8, 22.0)
        assert after < before


class TestSpecValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            make_server_spec(name="")

    def test_rejects_undercommit_ratio(self):
        from repro.datacenter.resources import ResourceCapacity
        from repro.datacenter.server import ServerSpec

        with pytest.raises(ConfigurationError):
            ServerSpec(
                name="s",
                capacity=ResourceCapacity(cpu_cores=4, ghz_per_core=2.0, memory_gb=8.0),
                cpu_overcommit=0.5,
            )

    def test_power_model_scaled_to_capacity(self):
        small = make_server_spec(cores=8, ghz=2.0).build_power_model()
        large = make_server_spec(cores=32, ghz=3.0).build_power_model()
        assert large.max_power_w > small.max_power_w
