"""Unit tests for the declarative spec grammar and its compiler."""

import pytest

from repro.errors import ScenarioSpecError
from repro.rng import RngFactory
from repro.scenarios import compile_spec, parse_offset, sample_value
from repro.thermal.environment import (
    ConstantEnvironment,
    SteppedEnvironment,
)


def _base_doc(**overrides):
    """A small valid document the individual tests mutate."""
    doc = {
        "name": "unit",
        "seed": 11,
        "duration": 900.0,
        "servers": [{"type": "stress", "count": 3}],
        "placements": [
            {
                "servers": "all",
                "vms": [
                    {
                        "name": "web-{server_index}",
                        "type": "c5.large",
                        "tasks": [{"constant": 0.4}],
                    }
                ],
            }
        ],
        "environment": {"constant": 22.0},
        "timeline": [],
    }
    doc.update(overrides)
    return doc


class TestParseOffset:
    def test_units(self):
        assert parse_offset(600) == 600.0
        assert parse_offset(12.5) == 12.5
        assert parse_offset("+2h") == 7200.0
        assert parse_offset("30m") == 1800.0
        assert parse_offset("+45s") == 45.0
        assert parse_offset("500ms") == 0.5
        assert parse_offset("1d") == 86400.0
        assert parse_offset("-90s") == -90.0

    def test_rejects_garbage(self):
        for bad in ("2 hours", "h2", "", True, None, [600]):
            with pytest.raises(ScenarioSpecError):
                parse_offset(bad)


class TestSampleValue:
    def test_literals_pass_through_without_draws(self):
        rng = RngFactory(1).stream("s")
        assert sample_value(3, rng, "p") == 3
        assert sample_value(0.25, rng, "p") == 0.25
        assert sample_value({"value": 9.0}, rng, "p") == 9.0
        # No draw consumed: a fresh stream produces the same next sample.
        fresh = RngFactory(1).stream("s")
        assert rng.uniform(0.0, 1.0) == fresh.uniform(0.0, 1.0)

    def test_distributions_deterministic_per_stream(self):
        def draw():
            rng = RngFactory(5).stream("s")
            return (
                sample_value({"uniform": [0.0, 1.0]}, rng, "p"),
                sample_value({"randint": [1, 6]}, rng, "p"),
                sample_value({"choice": ["a", "b", "c"]}, rng, "p"),
                sample_value(
                    {"normal": {"mean": 10.0, "std": 2.0, "min": 9.0,
                                "max": 11.0}},
                    rng, "p",
                ),
            )

        first, second = draw(), draw()
        assert first == second
        assert 0.0 <= first[0] <= 1.0
        assert first[1] in range(1, 7)
        assert first[2] in ("a", "b", "c")
        assert 9.0 <= first[3] <= 11.0

    def test_rejects_multi_key_and_unknown(self):
        rng = RngFactory(1).stream("s")
        with pytest.raises(ScenarioSpecError):
            sample_value({"uniform": [0, 1], "choice": [1]}, rng, "p")
        with pytest.raises(ScenarioSpecError):
            sample_value({"lognormal": [0, 1]}, rng, "p")
        with pytest.raises(ScenarioSpecError):
            sample_value({"uniform": [2.0, 1.0]}, rng, "p")


class TestCompileBasics:
    def test_compiles_onto_fleet_scenario(self):
        scenario = compile_spec(_base_doc())
        assert scenario.name == "unit"
        assert scenario.seed == 11
        assert scenario.n_servers == 3
        assert scenario.n_vms == 3
        assert [s.name for s in scenario.server_specs] == [
            "server-000", "server-001", "server-002",
        ]
        assert scenario.vm_specs[1][0].name == "web-1"
        assert isinstance(scenario.environment, ConstantEnvironment)

    def test_deterministic(self):
        assert compile_spec(_base_doc()) == compile_spec(_base_doc())

    def test_inline_hardware_and_selectors(self):
        doc = _base_doc(
            servers=[
                {"type": "stress", "count": 2},
                {"cpu_cores": 8, "ghz_per_core": 2.0, "memory_gb": 32.0,
                 "name": "edge-{index:03d}"},
            ],
            placements=[
                {
                    "servers": {"names": ["edge-002"]},
                    "vms": [{"name": "cache", "vcpus": 2, "memory_gb": 4.0,
                             "tasks": [{"constant": 0.2}]}],
                }
            ],
        )
        scenario = compile_spec(doc)
        assert scenario.server_specs[2].name == "edge-002"
        assert scenario.server_specs[2].capacity.cpu_cores == 8
        assert scenario.vm_specs == ((), (), (scenario.vm_specs[2][0],))

    def test_duplicate_vm_names_rejected(self):
        doc = _base_doc()
        doc["placements"][0]["vms"][0]["name"] = "same-everywhere"
        with pytest.raises(ScenarioSpecError, match="duplicate VM name"):
            compile_spec(doc)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown key"):
            compile_spec(_base_doc(migrations=[]))


class TestBrokenSpecs:
    """The three deliberately broken documents pinned by the issue."""

    def test_overcommitted_server_names_the_constraint(self):
        # 5 r5.2xlarge (64 GiB each) cannot fit a 64 GiB stress box.
        doc = _base_doc()
        doc["placements"] = [
            {
                "servers": "all",
                "vms": [{"name": "big-{server_index}-{vm_index}",
                         "type": "r5.2xlarge",
                         "tasks": [{"constant": 0.3}], "count": 5}],
            }
        ]
        with pytest.raises(ScenarioSpecError) as err:
            compile_spec(doc)
        message = str(err.value)
        assert "overcommitted on memory" in message
        assert "hard admission constraint" in message
        assert "server-000" in message

    def test_overcommitted_vcpus_names_the_overcommit_math(self):
        # 9 x 4 vCPUs = 36 > 16 cores x 2.0 overcommit, within memory.
        doc = _base_doc()
        doc["placements"] = [
            {
                "servers": "all",
                "vms": [{"name": "cpu-{server_index}-{vm_index}", "vcpus": 4,
                         "memory_gb": 2.0, "tasks": [{"constant": 0.3}],
                         "count": 9}],
            }
        ]
        with pytest.raises(ScenarioSpecError) as err:
            compile_spec(doc)
        message = str(err.value)
        assert "overcommitted on vCPUs" in message
        assert "16 cores x 2.0 overcommit" in message

    def test_negative_duration_offset_rejected_precisely(self):
        with pytest.raises(ScenarioSpecError) as err:
            compile_spec(_base_doc(duration="-2h"))
        message = str(err.value)
        assert "spec.duration" in message
        assert "negative duration offset" in message

    def test_unknown_catalog_hardware_key_rejected_precisely(self):
        doc = _base_doc(servers=[{"type": "m5.gonzo", "count": 2}])
        with pytest.raises(ScenarioSpecError) as err:
            compile_spec(doc)
        message = str(err.value)
        assert "unknown catalog hardware type 'm5.gonzo'" in message
        assert "stress" in message  # the known keys are listed


class TestTimeline:
    def test_offsets_and_event_ordering(self):
        doc = _base_doc(timeline=[
            {"at": "+10m", "ambient_step": 26.0},
            {"at": "+5m", "cooling_derate": 3.0},
        ])
        env = compile_spec(doc).environment
        assert isinstance(env, SteppedEnvironment)
        # Chronological fold: derate applies to the 22.0 base at 300 s,
        # the absolute step overrides at 600 s.
        assert env.temperature(299.0) == pytest.approx(22.0)
        assert env.temperature(300.0) == pytest.approx(25.0)
        assert env.temperature(600.0) == pytest.approx(26.0)

    def test_arrival_spacing_and_conditional_when(self):
        doc = _base_doc(timeline=[
            {
                "at": 300.0,
                "arrival": {
                    "servers": {"range": [0, 2]},
                    "count": 2,
                    "spacing": "+30s",
                    "when": {"min_free_memory_gb": 1.0},
                    "vm": {"name": "burst-{server_index}-{vm_index}",
                           "type": "t3.small",
                           "tasks": [{"constant": {"uniform": [0.5, 0.7]}}]},
                },
            },
        ])
        scenario = compile_spec(doc)
        assert [(t, s) for t, s, _ in scenario.arrivals] == [
            (300.0, "server-000"), (330.0, "server-000"),
            (300.0, "server-001"), (330.0, "server-001"),
        ]
        assert scenario.arrivals[0][2].name == "burst-0-0"

    def test_arrival_past_end_would_silently_never_fire(self):
        doc = _base_doc(timeline=[
            {"at": 900.0, "arrival": {
                "servers": 0,
                "vm": {"name": "late", "type": "t3.micro", "tasks": []},
            }},
        ])
        with pytest.raises(ScenarioSpecError, match="silently never fire"):
            compile_spec(doc)

    def test_negative_event_offset_rejected(self):
        doc = _base_doc(timeline=[{"at": "-5m", "ambient_step": 25.0}])
        with pytest.raises(ScenarioSpecError, match="cannot precede"):
            compile_spec(doc)

    def test_migration_of_initially_placed_vm(self):
        doc = _base_doc(timeline=[
            {"at": 120.0, "migrate": {"vm": "web-0", "to": "server-002"}},
        ])
        scenario = compile_spec(doc)
        assert scenario.migrations == ((120.0, "web-0", "server-002"),)

    def test_migration_of_arrival_vm_rejected_with_reason(self):
        doc = _base_doc(timeline=[
            {"at": 100.0, "arrival": {
                "servers": 0,
                "vm": {"name": "late-0", "type": "t3.micro",
                       "tasks": [{"constant": 0.2}]},
            }},
            {"at": 200.0, "migrate": {"vm": "late-0", "to": "server-001"}},
        ])
        with pytest.raises(ScenarioSpecError,
                           match="mid-run arrivals cannot be migrated"):
            compile_spec(doc)

    def test_headroom_exhaustion_errors_unless_drop_requested(self):
        arrival = {
            "servers": 0,
            "count": 20,
            "vm": {"name": "fat-{vm_index}", "type": "r5.2xlarge",
                   "tasks": [{"constant": 0.3}]},
        }
        doc = _base_doc(timeline=[{"at": 100.0, "arrival": dict(arrival)}])
        with pytest.raises(ScenarioSpecError, match="lacks committed headroom"):
            compile_spec(doc)
        relaxed = dict(arrival, require_headroom=True)
        scenario = compile_spec(_base_doc(
            timeline=[{"at": 100.0, "arrival": relaxed}]
        ))
        # 64 GiB box with one 4 GiB web VM fits 0 of the 64 GiB arrivals
        # after the first... exactly those that fit were kept.
        assert all(vm.memory_gb == 64.0 for _, _, vm in scenario.arrivals)
        assert len(scenario.arrivals) < 20

    def test_ambient_events_on_sinusoidal_base_rejected(self):
        doc = _base_doc(
            environment={"sinusoidal": {"mean": 22.0, "amplitude": 2.0,
                                        "period": "+1d"}},
            timeline=[{"at": 100.0, "ambient_step": 25.0}],
        )
        with pytest.raises(ScenarioSpecError, match="sinusoidal"):
            compile_spec(doc)
