"""Unit tests for the end-to-end scenario invariant harness."""

import pytest

from repro.datacenter.server import ResourceCapacity, ServerSpec
from repro.datacenter.vm import VmSpec
from repro.datacenter.workload import ConstantTask
from repro.errors import InvariantViolationError
from repro.experiments.scenarios import FleetScenario
from repro.scenarios import (
    assert_invariants,
    compile_spec,
    flash_crowd_spec,
    run_with_invariants,
)
from repro.thermal.environment import ConstantEnvironment


def _flash_crowd(n=6, duration_s=900.0):
    return compile_spec(flash_crowd_spec(
        n_servers=n, duration_s=duration_s, spike_time_s=300.0
    ))


class TestCleanRuns:
    def test_flash_crowd_passes_all_invariants(self):
        report = run_with_invariants(_flash_crowd())
        assert report.ok
        assert report.violations == ()
        assert report.checks > 0
        assert report.events_fired >= 4  # the spike's four arrivals
        assert report.n_servers == 6
        assert report.pue is not None and report.pue >= 1.0
        assert report.it_energy_kwh > 0.0
        assert report.cooling_energy_kwh > 0.0
        assert "ok" in report.summary()

    def test_scalar_engine_path_also_clean(self):
        report = run_with_invariants(_flash_crowd(n=4), use_fleet_engine=False)
        assert report.ok, report.violations

    def test_assert_invariants_helper(self):
        report = assert_invariants(_flash_crowd(n=4))
        assert report.ok


class TestViolationCapture:
    """The harness reports faults instead of crashing the sweep."""

    @staticmethod
    def _doomed_scenario():
        # An arrival too big for its server: FleetScenario's validator
        # only checks names and timing, so the fault fires at runtime —
        # exactly what the harness must catch, not propagate.
        server = ServerSpec(
            name="server-000",
            capacity=ResourceCapacity(cpu_cores=8, ghz_per_core=2.4,
                                      memory_gb=16.0),
            fan_count=2,
            fan_speed=0.7,
        )
        resident = VmSpec(name="resident", vcpus=2, memory_gb=12.0,
                          tasks=(ConstantTask(level=0.5),))
        whale = VmSpec(name="whale", vcpus=2, memory_gb=12.0,
                       tasks=(ConstantTask(level=0.5),))
        return FleetScenario(
            name="doomed",
            server_specs=(server,),
            vm_specs=((resident,),),
            environment=ConstantEnvironment(22.0),
            duration_s=300.0,
            arrivals=((60.0, "server-000", whale),),
        )

    def test_runtime_fault_becomes_violation(self):
        report = run_with_invariants(self._doomed_scenario())
        assert not report.ok
        assert any("runtime error" in v for v in report.violations)
        assert "violation" in report.summary()

    def test_strict_raises_with_the_report_text(self):
        with pytest.raises(InvariantViolationError, match="runtime error"):
            run_with_invariants(self._doomed_scenario(), strict=True)
        with pytest.raises(InvariantViolationError):
            assert_invariants(self._doomed_scenario())


class TestLedgerConsistency:
    def test_energy_ledger_fields_cross_check(self):
        report = run_with_invariants(_flash_crowd(n=4), check_interval_s=30.0)
        assert report.ok
        # PUE is (IT + cooling) / IT, so the three reported numbers must
        # agree with each other to float precision.
        assert report.pue == pytest.approx(
            (report.it_energy_kwh + report.cooling_energy_kwh)
            / report.it_energy_kwh
        )
