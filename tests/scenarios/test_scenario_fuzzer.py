"""Unit tests for the seeded scenario fuzzer."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import FleetScenario
from repro.scenarios import ScenarioFuzzer


class TestDeterminism:
    def test_same_seed_same_document(self):
        fuzzer = ScenarioFuzzer()
        assert fuzzer.spec(42) == fuzzer.spec(42)
        assert ScenarioFuzzer().spec(42) == fuzzer.spec(42)

    def test_different_seeds_vary_structurally(self):
        fuzzer = ScenarioFuzzer()
        fingerprints = {
            (
                doc["duration"],
                len(doc["servers"]),
                len(doc["timeline"]),
                doc["servers"][0]["type"],
            )
            for doc in fuzzer.specs(30, base_seed=100)
        }
        assert len(fingerprints) > 10

    def test_documents_json_round_trip_exactly(self):
        fuzzer = ScenarioFuzzer()
        for seed in range(10):
            doc = fuzzer.spec(seed)
            assert json.loads(json.dumps(doc)) == doc


class TestValidByConstruction:
    def test_thirty_seeds_compile_clean(self):
        fuzzer = ScenarioFuzzer()
        for seed in range(30):
            scenario = fuzzer.scenario(seed)
            assert isinstance(scenario, FleetScenario)
            assert scenario.n_servers >= 3
            assert scenario.duration_s >= 600.0

    def test_scenario_equals_compile_of_spec(self):
        from repro.scenarios import compile_spec

        fuzzer = ScenarioFuzzer()
        assert fuzzer.scenario(7) == compile_spec(fuzzer.spec(7),
                                                  catalog=fuzzer.catalog)

    def test_specs_batch(self):
        docs = ScenarioFuzzer().specs(5, base_seed=50)
        assert [doc["seed"] for doc in docs] == [50, 51, 52, 53, 54]


class TestConstructorValidation:
    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            ScenarioFuzzer(n_servers=(1, 4))
        with pytest.raises(ConfigurationError):
            ScenarioFuzzer(n_servers=(6, 3))
        with pytest.raises(ConfigurationError):
            ScenarioFuzzer(duration_s=(60.0, 600.0))
        with pytest.raises(ConfigurationError):
            ScenarioFuzzer(vms_per_server=(3, 1))
        with pytest.raises(ConfigurationError):
            ScenarioFuzzer(max_events=-1)
        with pytest.raises(ConfigurationError):
            ScenarioFuzzer().specs(0)
