"""Tests for the ``fleet-scenario`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.scenarios import cooling_failure_spec


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(cooling_failure_spec(
        n_servers=4, duration_s=900.0, failure_time_s=300.0
    )))
    return str(path)


class TestValidate:
    def test_valid_spec_ok(self, spec_path, capsys):
        assert main(["fleet-scenario", "validate", spec_path]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "cooling-failure-4" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(
            ["fleet-scenario", "validate", str(tmp_path / "nope.json")]
        ) == 2
        assert "fleet-scenario" in capsys.readouterr().err

    def test_invalid_spec_exits_2_with_path_qualified_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.json"
        doc = cooling_failure_spec(n_servers=4, duration_s=900.0,
                                   failure_time_s=300.0)
        doc["duration"] = "-2h"
        path.write_text(json.dumps(doc))
        assert main(["fleet-scenario", "validate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "spec.duration" in err
        assert "negative duration offset" in err

    def test_non_object_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert main(["fleet-scenario", "validate", str(path)]) == 2
        assert "one JSON object" in capsys.readouterr().err


class TestCompile:
    def test_prints_fleet_breakdown(self, spec_path, capsys):
        assert main(["fleet-scenario", "compile", spec_path]) == 0
        out = capsys.readouterr().out
        assert "servers         4" in out
        assert "server-000" in out
        assert "SteppedEnvironment" in out


class TestFuzz:
    def test_fixed_seed_sweep_returns_0(self, capsys):
        assert main(
            ["fleet-scenario", "fuzz", "--seed", "7", "--count", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 with violations" in out

    def test_strict_sweep_returns_0(self, capsys):
        assert main(
            ["fleet-scenario", "fuzz", "--seed", "3", "--count", "3",
             "--strict"]
        ) == 0

    def test_compile_only_sweep(self, capsys):
        assert main(
            ["fleet-scenario", "fuzz", "--seed", "0", "--count", "25",
             "--compile-only"]
        ) == 0
        assert "compiled 25" in capsys.readouterr().out

    def test_bad_count_exits_2(self, capsys):
        assert main(["fleet-scenario", "fuzz", "--count", "0"]) == 2
