"""Unit tests for the hardware/VM-type catalog."""

import pytest

from repro.errors import ScenarioSpecError
from repro.scenarios import default_catalog
from repro.scenarios.catalog import Catalog, HardwareType, VmType


class TestHardwareType:
    def test_server_spec_materializes_all_fields(self):
        hw = default_catalog().hardware_type("stress")
        spec = hw.server_spec("server-007")
        assert spec.name == "server-007"
        assert spec.capacity.cpu_cores == 16
        assert spec.capacity.ghz_per_core == 2.4
        assert spec.capacity.memory_gb == 64.0
        assert spec.fan_count == 4
        assert spec.fan_speed == 0.7
        assert spec.cpu_overcommit == 2.0

    def test_stress_sku_matches_hand_coded_stress_servers(self):
        # The load-bearing identity behind spec/hand-coded parity.
        from repro.experiments.scenarios import cooling_failure_scenario

        hand = cooling_failure_scenario(n_servers=2).server_specs[0]
        sku = default_catalog().hardware_type("stress").server_spec(hand.name)
        assert sku == hand

    def test_field_overrides(self):
        hw = default_catalog().hardware_type("commodity-8")
        spec = hw.server_spec("x", fan_count=6, fan_speed=0.5, cpu_overcommit=1.0)
        assert (spec.fan_count, spec.fan_speed, spec.cpu_overcommit) == (6, 0.5, 1.0)

    def test_vcpu_limit_honors_overcommit(self):
        spec = default_catalog().hardware_type("commodity-8").server_spec("x")
        assert spec.vcpu_limit == 8 * 2.0


class TestVmType:
    def test_flavor_families_present(self):
        names = default_catalog().vm_type_names()
        for flavor in ("c5.large", "c5.2xlarge", "r5.xlarge", "t3.micro"):
            assert flavor in names

    def test_vm_spec_materializes(self):
        flavor = default_catalog().vm_type("r5.large")
        vm = flavor.vm_spec("tenant-0")
        assert (vm.name, vm.vcpus, vm.memory_gb) == ("tenant-0", 2, 16.0)
        assert vm.tasks == ()


class TestLookupErrors:
    def test_unknown_hardware_lists_known_types(self):
        with pytest.raises(ScenarioSpecError) as err:
            default_catalog().hardware_type("m5.gonzo")
        assert "unknown catalog hardware type 'm5.gonzo'" in str(err.value)
        assert "stress" in str(err.value)

    def test_unknown_vm_type_lists_known_types(self):
        with pytest.raises(ScenarioSpecError) as err:
            default_catalog().vm_type("z9.huge")
        assert "unknown catalog VM type 'z9.huge'" in str(err.value)
        assert "c5.large" in str(err.value)

    def test_custom_catalog_lookup(self):
        catalog = Catalog(
            hardware=(HardwareType("lab", cpu_cores=4, ghz_per_core=2.0,
                                   memory_gb=16.0),),
            vm_types=(VmType("nano", vcpus=1, memory_gb=0.5),),
        )
        assert catalog.hardware_type("lab").cpu_cores == 4
        assert catalog.vm_type("nano").memory_gb == 0.5
        with pytest.raises(ScenarioSpecError):
            catalog.hardware_type("stress")
