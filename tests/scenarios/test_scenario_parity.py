"""Bit-parity: spec re-expressions vs the hand-coded stress scenarios.

The contract (reprolint R004 pins it via the ``Parity:`` markers in
:mod:`repro.scenarios.library`): ``cooling_failure_spec`` compiles to the
same :class:`FleetScenario` as ``cooling_failure_scenario``, and
``flash_crowd_spec`` to the same as ``flash_crowd_scenario`` — dataclass
equality AND telemetry-array equality end to end at the same seed.
"""

import numpy as np
import pytest

from repro.experiments.scenarios import (
    build_fleet_simulation,
    cooling_failure_scenario,
    flash_crowd_scenario,
)
from repro.scenarios import compile_spec, cooling_failure_spec, flash_crowd_spec


def _telemetry_arrays(scenario, run_s):
    sim = build_fleet_simulation(scenario)
    sim.run(run_s)
    out = {}
    for name in sim.telemetry.server_names:
        bundle = sim.telemetry.for_server(name)
        out[name] = (
            bundle.cpu_temperature.values_array(),
            bundle.utilization.values_array(),
        )
    return out


class TestCoolingFailureParity:
    def test_scenario_dataclass_equality(self):
        compiled = compile_spec(
            cooling_failure_spec(n_servers=8, recovery_time_s=1200.0)
        )
        hand = cooling_failure_scenario(n_servers=8, recovery_time_s=1200.0)
        assert compiled.environment == hand.environment
        assert compiled.server_specs == hand.server_specs
        assert compiled.vm_specs == hand.vm_specs
        assert compiled == hand

    def test_telemetry_bit_identical(self):
        kwargs = dict(n_servers=6, duration_s=900.0, failure_time_s=300.0)
        compiled = compile_spec(cooling_failure_spec(**kwargs))
        hand = cooling_failure_scenario(**kwargs)
        ours = _telemetry_arrays(compiled, 900.0)
        theirs = _telemetry_arrays(hand, 900.0)
        assert ours.keys() == theirs.keys()
        for name in ours:
            for mine, ref in zip(ours[name], theirs[name]):
                assert np.array_equal(mine, ref)

    def test_non_default_arguments_track_the_original(self):
        kwargs = dict(n_servers=5, seed=1234, failure_time_s=200.0,
                      failure_delta_c=5.0, duration_s=1000.0,
                      hot_fraction=0.4)
        assert compile_spec(cooling_failure_spec(**kwargs)) == (
            cooling_failure_scenario(**kwargs)
        )


class TestFlashCrowdParity:
    def test_scenario_dataclass_equality_including_arrivals(self):
        compiled = compile_spec(flash_crowd_spec(n_servers=8))
        hand = flash_crowd_scenario(n_servers=8)
        assert compiled.arrivals == hand.arrivals
        assert compiled == hand

    def test_telemetry_bit_identical(self):
        kwargs = dict(n_servers=6, duration_s=900.0, spike_time_s=300.0)
        compiled = compile_spec(flash_crowd_spec(**kwargs))
        hand = flash_crowd_scenario(**kwargs)
        ours = _telemetry_arrays(compiled, 900.0)
        theirs = _telemetry_arrays(hand, 900.0)
        assert ours.keys() == theirs.keys()
        for name in ours:
            for mine, ref in zip(ours[name], theirs[name]):
                assert np.array_equal(mine, ref)


class TestGuardParity:
    """The spec builders reject exactly what the hand-coded ones reject."""

    def test_cooling_failure_guards(self):
        from repro.errors import ScenarioSpecError

        with pytest.raises(ScenarioSpecError):
            cooling_failure_spec(n_servers=1)
        with pytest.raises(ScenarioSpecError):
            cooling_failure_spec(hot_fraction=1.5)
        with pytest.raises(ScenarioSpecError):
            cooling_failure_spec(failure_time_s=5000.0, duration_s=3600.0)
        with pytest.raises(ScenarioSpecError):
            cooling_failure_spec(failure_time_s=600.0, recovery_time_s=500.0)

    def test_flash_crowd_guards(self):
        from repro.errors import ScenarioSpecError

        with pytest.raises(ScenarioSpecError):
            flash_crowd_spec(n_servers=1)
        with pytest.raises(ScenarioSpecError):
            flash_crowd_spec(spike_time_s=5000.0, duration_s=3600.0)
