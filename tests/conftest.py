"""Shared fixtures for the test suite.

Expensive artefacts (simulated experiment records, a trained stable
model) are session-scoped: they are built once and shared by every test
that needs realistic data, keeping the suite fast without stubbing the
system under test.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig
from repro.core.pipeline import train_stable_predictor
from repro.core.records import ExperimentRecord, VmRecord
from repro.datacenter.resources import ResourceCapacity
from repro.datacenter.server import Server, ServerSpec
from repro.datacenter.vm import Vm, VmSpec
from repro.datacenter.workload import ConstantTask
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import random_scenarios
from repro.rng import RngFactory


def make_server_spec(
    name: str = "srv",
    cores: int = 16,
    ghz: float = 2.4,
    memory_gb: float = 64.0,
    fan_count: int = 4,
    fan_speed: float = 0.7,
) -> ServerSpec:
    """A commodity server spec for unit tests."""
    return ServerSpec(
        name=name,
        capacity=ResourceCapacity(cpu_cores=cores, ghz_per_core=ghz, memory_gb=memory_gb),
        fan_count=fan_count,
        fan_speed=fan_speed,
    )


def make_vm(
    name: str = "vm",
    vcpus: int = 2,
    memory_gb: float = 4.0,
    level: float = 0.6,
    n_tasks: int = 1,
) -> Vm:
    """A VM running constant-load tasks."""
    spec = VmSpec(
        name=name,
        vcpus=vcpus,
        memory_gb=memory_gb,
        tasks=tuple(ConstantTask(level=level) for _ in range(n_tasks)),
    )
    return Vm(spec)


def make_record(
    psi: float | None = 55.0,
    n_vms: int = 3,
    fan_count: int = 4,
    env: float = 22.0,
    util: float = 0.5,
    kind: str = "constant",
) -> ExperimentRecord:
    """A synthetic Eq. (2) record without running a simulation."""
    vms = tuple(
        VmRecord(
            vcpus=2,
            memory_gb=4.0,
            task_kinds=(kind,),
            nominal_utilization=util,
        )
        for _ in range(n_vms)
    )
    return ExperimentRecord(
        theta_cpu_cores=16,
        theta_cpu_ghz=38.4,
        theta_memory_gb=64.0,
        theta_fan_count=fan_count,
        theta_fan_speed=0.7,
        delta_env_c=env,
        vms=vms,
        psi_stable_c=psi,
    )


@pytest.fixture
def server_spec() -> ServerSpec:
    """Fresh commodity server spec."""
    return make_server_spec()

@pytest.fixture
def server(server_spec) -> Server:
    """Fresh server runtime instance."""
    return Server(server_spec)


@pytest.fixture(scope="session")
def experiment_records():
    """30 simulated Eq. (2) records (short runs, session-cached)."""
    scenarios = random_scenarios(
        30, base_seed=77_000, n_vms_range=(2, 8), duration_s=1000.0
    )
    return [run_experiment(s).record for s in scenarios]


@pytest.fixture(scope="session")
def trained_predictor(experiment_records):
    """A stable model trained on the session records (tiny grid)."""
    report = train_stable_predictor(
        experiment_records,
        n_splits=5,
        c_grid=(512.0,),
        gamma_grid=(0.02,),
        epsilon_grid=(0.125,),
        rng=RngFactory(11).stream("cv"),
    )
    return report.predictor


@pytest.fixture(scope="session")
def short_config() -> ExperimentConfig:
    """Experiment config with a short but valid duration."""
    return ExperimentConfig(duration_s=900.0)
