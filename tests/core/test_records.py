"""Unit tests for the Eq. (2) record schema."""

import pytest

from repro.core.records import ExperimentRecord, VmRecord
from repro.errors import DatasetError
from tests.conftest import make_record


class TestVmRecord:
    def test_round_trip_dict(self):
        vm = VmRecord(vcpus=2, memory_gb=4.0, task_kinds=("constant", "bursty"),
                      nominal_utilization=0.55)
        assert VmRecord.from_dict(vm.to_dict()) == vm

    def test_rejects_bad_utilization(self):
        with pytest.raises(DatasetError):
            VmRecord(vcpus=1, memory_gb=1.0, task_kinds=(), nominal_utilization=1.2)

    def test_rejects_zero_vcpus(self):
        with pytest.raises(DatasetError):
            VmRecord(vcpus=0, memory_gb=1.0, task_kinds=(), nominal_utilization=0.5)


class TestExperimentRecord:
    def test_round_trip_dict(self):
        record = make_record(psi=61.25)
        assert ExperimentRecord.from_dict(record.to_dict()) == record

    def test_round_trip_preserves_none_output(self):
        record = make_record(psi=None)
        restored = ExperimentRecord.from_dict(record.to_dict())
        assert restored.psi_stable_c is None
        assert not restored.has_output

    def test_require_output(self):
        assert make_record(psi=55.0).require_output() == 55.0
        with pytest.raises(DatasetError):
            make_record(psi=None).require_output()

    def test_with_output_creates_labelled_copy(self):
        record = make_record(psi=None)
        labelled = record.with_output(58.5)
        assert labelled.psi_stable_c == 58.5
        assert record.psi_stable_c is None
        assert labelled.vms == record.vms

    def test_n_vms(self):
        assert make_record(n_vms=5).n_vms == 5

    def test_rejects_bad_fan_speed(self):
        with pytest.raises(DatasetError):
            ExperimentRecord(
                theta_cpu_cores=8,
                theta_cpu_ghz=16.0,
                theta_memory_gb=32.0,
                theta_fan_count=4,
                theta_fan_speed=0.0,
                delta_env_c=22.0,
                vms=(),
            )

    def test_rejects_zero_fans(self):
        with pytest.raises(DatasetError):
            ExperimentRecord(
                theta_cpu_cores=8,
                theta_cpu_ghz=16.0,
                theta_memory_gb=32.0,
                theta_fan_count=0,
                theta_fan_speed=0.5,
                delta_env_c=22.0,
                vms=(),
            )

    def test_metadata_preserved(self):
        record = make_record()
        labelled = record.with_output(60.0)
        assert labelled.metadata == record.metadata
