"""Unit tests for the dynamic predictor and trace replay (Eq. 8)."""

import math

import pytest

from repro.config import PredictionConfig
from repro.core.curve import PredefinedCurve
from repro.core.dynamic import (
    DynamicTemperaturePredictor,
    replay_dynamic_prediction,
)
from repro.errors import ConfigurationError


def config(gap=60.0, update=15.0, lam=0.8):
    return PredictionConfig(
        prediction_gap_s=gap, update_interval_s=update, learning_rate=lam
    )


def flat_curve(value=50.0):
    return PredefinedCurve(phi_0=value, psi_stable=value, t_break_s=600.0)


def exponential_trace(phi0=40.0, target=70.0, tau=150.0, dt=5.0, duration=1800.0):
    """A first-order plant trace — what the log curve approximates."""
    times, values = [], []
    t = 0.0
    while t <= duration:
        times.append(t)
        values.append(target + (phi0 - target) * math.exp(-t / tau))
        t += dt
    return times, values


class TestOnlinePredictor:
    def test_prediction_is_curve_plus_gamma(self):
        predictor = DynamicTemperaturePredictor(flat_curve(50.0), config())
        predictor.observe(0.0, 53.0)  # first observation calibrates: γ=0.8·3
        assert predictor.predict_at(100.0) == pytest.approx(50.0 + 2.4)

    def test_updates_respect_interval(self):
        predictor = DynamicTemperaturePredictor(flat_curve(), config(update=15.0))
        assert predictor.observe(0.0, 51.0) is True
        assert predictor.observe(5.0, 51.0) is False
        assert predictor.observe(14.9, 51.0) is False
        assert predictor.observe(15.0, 51.0) is True

    def test_uncalibrated_never_updates(self):
        predictor = DynamicTemperaturePredictor(
            flat_curve(), config(), calibrated=False
        )
        assert predictor.observe(0.0, 99.0) is False
        assert predictor.calibrator.gamma == 0.0

    def test_predict_ahead_uses_gap(self):
        predictor = DynamicTemperaturePredictor(flat_curve(), config(gap=60.0))
        forecast = predictor.predict_ahead(100.0)
        assert forecast.target_time_s == 160.0
        assert forecast.made_at_s == 100.0

    def test_retarget_replaces_curve(self):
        predictor = DynamicTemperaturePredictor(flat_curve(50.0), config())
        predictor.retarget(300.0, measured_c=55.0, new_psi_stable=65.0)
        assert predictor.curve.origin_s == 300.0
        assert predictor.curve.phi_0 == 55.0
        assert predictor.predict_at(300.0 + 600.0) == pytest.approx(
            65.0 + predictor.calibrator.gamma
        )
        assert predictor.retarget_log == [(300.0, 55.0, 65.0)]


class TestReplay:
    def test_calibrated_beats_uncalibrated_on_model_mismatch(self):
        times, values = exponential_trace()
        curve = PredefinedCurve(phi_0=40.0, psi_stable=70.0, t_break_s=600.0)
        calibrated = replay_dynamic_prediction(times, values, curve, config())
        uncalibrated = replay_dynamic_prediction(
            times, values, curve, config(), calibrated=False
        )
        assert calibrated.mse < uncalibrated.mse

    def test_perfect_curve_on_saturated_trace_near_zero_mse(self):
        times = [float(t) for t in range(0, 1200, 5)]
        values = [55.0] * len(times)
        result = replay_dynamic_prediction(times, values, flat_curve(55.0), config())
        assert result.mse == pytest.approx(0.0, abs=1e-12)

    def test_forecasts_stay_within_trace(self):
        times, values = exponential_trace(duration=900.0)
        curve = PredefinedCurve(phi_0=40.0, psi_stable=70.0)
        result = replay_dynamic_prediction(times, values, curve, config(gap=60.0))
        assert max(p.target_time_s for p in result.predictions) <= 900.0 + 1e-9
        assert len(result.predictions) == len(result.actuals)

    def test_larger_gap_hurts_during_transient(self):
        times, values = exponential_trace()
        curve = PredefinedCurve(phi_0=40.0, psi_stable=70.0)
        short = replay_dynamic_prediction(times, values, curve, config(gap=15.0))
        long = replay_dynamic_prediction(times, values, curve, config(gap=120.0))
        assert short.mse < long.mse

    def test_retarget_improves_after_load_change(self):
        # Trace: stable at 50 until 600 s, then rises toward 65.
        times, values = [], []
        for t in range(0, 1800, 5):
            times.append(float(t))
            if t < 600:
                values.append(50.0)
            else:
                values.append(65.0 + (50.0 - 65.0) * math.exp(-(t - 600) / 150.0))
        curve = PredefinedCurve(phi_0=50.0, psi_stable=50.0)
        blind = replay_dynamic_prediction(
            times, values, curve, config(), calibrated=False
        )
        informed = replay_dynamic_prediction(
            times, values, curve, config(), calibrated=False,
            retargets=[(600.0, 65.0)],
        )
        assert informed.mse < blind.mse

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            replay_dynamic_prediction([0.0, 1.0], [50.0], flat_curve(), config())

    def test_rejects_tiny_trace(self):
        with pytest.raises(ConfigurationError):
            replay_dynamic_prediction([0.0], [50.0], flat_curve(), config())


class TestCalibrationTrace:
    def test_replay_exposes_calibration_steps(self):
        times, values = exponential_trace()
        result = replay_dynamic_prediction(
            times, values, flat_curve(40.0), config(update=15.0)
        )
        assert result.calibration_steps, "replay should record Δ_update steps"
        # one update per 15 s grid point covered by the 5 s trace
        assert len(result.calibration_steps) == len(
            [t for t in times if t % 15.0 == 0.0]
        )
        # the exposed steps reproduce the Eq. (6) recursion exactly
        gamma = 0.0
        for step in result.calibration_steps:
            gamma += 0.8 * step.dif
            assert step.gamma_after == pytest.approx(gamma)

    def test_gamma_trace_aligned_with_times(self):
        times, values = exponential_trace()
        result = replay_dynamic_prediction(times, values, flat_curve(40.0), config())
        assert len(result.gamma_trace) == len(result.calibration_times)
        assert result.calibration_times == sorted(result.calibration_times)
        # γ chases the (trace − curve) mismatch upward on this workload
        assert result.gamma_trace[-1] > result.gamma_trace[0]

    def test_uncalibrated_replay_has_empty_trace(self):
        times, values = exponential_trace()
        result = replay_dynamic_prediction(
            times, values, flat_curve(40.0), config(), calibrated=False
        )
        assert result.calibration_steps == []
        assert result.gamma_trace == []


class TestUpdateScheduleGrid:
    """Regression: ``observe`` used to re-anchor the next deadline at the
    (jittered) measurement time, so noisy sensor timestamps drifted the
    Δ_update schedule off its grid and starved the calibrator."""

    def _jittered_times(self, duration=1500.0, dt=5.0, jitter=2.0, seed=3):
        import random

        rng = random.Random(seed)
        return [i * dt + rng.uniform(0.0, jitter) for i in range(int(duration / dt) + 1)]

    def test_jittered_trace_keeps_update_count(self):
        times = self._jittered_times()
        predictor = DynamicTemperaturePredictor(flat_curve(), config(update=15.0))
        update_times = [t for t in times if predictor.observe(t, 50.0)]
        # One update per 15 s grid point covered by the trace — drift would
        # progressively push deadlines later and lose updates.
        expected = int(max(times) // 15.0) + 1
        assert len(update_times) == expected

    def test_updates_land_near_grid_points(self):
        times = self._jittered_times(jitter=1.5)
        predictor = DynamicTemperaturePredictor(flat_curve(), config(update=15.0))
        update_times = [t for t in times if predictor.observe(t, 50.0)]
        for k, t in enumerate(update_times):
            # Each update is the first sample at/after its grid deadline:
            # within one sample period + jitter of k·Δ_update.
            assert k * 15.0 - 1e-9 <= t <= k * 15.0 + 5.0 + 1.5

    def test_exact_grid_unchanged(self):
        times = [float(t) for t in range(0, 300, 5)]
        predictor = DynamicTemperaturePredictor(flat_curve(), config(update=15.0))
        update_times = [t for t in times if predictor.observe(t, 50.0)]
        assert update_times == [float(t) for t in range(0, 300, 15)]

    def test_gap_in_trace_advances_on_grid(self):
        predictor = DynamicTemperaturePredictor(flat_curve(), config(update=15.0))
        assert predictor.observe(0.0, 50.0)
        # A long observation gap: the next deadline lands on the grid point
        # following the gap, not at (gap end + interval).
        assert predictor.observe(100.0, 50.0)
        assert not predictor.observe(101.0, 50.0)
        assert predictor.observe(105.0, 50.0)
