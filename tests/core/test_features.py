"""Unit tests for feature extraction."""

import numpy as np
import pytest

from repro.core.features import FeatureExtractor
from repro.core.records import ExperimentRecord, VmRecord
from repro.errors import FeatureError
from tests.conftest import make_record


@pytest.fixture
def extractor():
    return FeatureExtractor()


class TestShape:
    def test_vector_matches_names(self, extractor):
        vector = extractor.extract(make_record())
        assert vector.shape == (extractor.n_features,)
        assert len(extractor.feature_names) == extractor.n_features

    def test_matrix_stacks_rows(self, extractor):
        records = [make_record(n_vms=k) for k in (2, 5, 9)]
        matrix = extractor.matrix(records)
        assert matrix.shape == (3, extractor.n_features)

    def test_matrix_of_zero_records_rejected(self, extractor):
        with pytest.raises(FeatureError):
            extractor.matrix([])

    def test_targets_vector(self, extractor):
        records = [make_record(psi=50.0), make_record(psi=60.0)]
        assert extractor.targets(records).tolist() == [50.0, 60.0]


class TestSemantics:
    def feature(self, extractor, record, name):
        return extractor.extract(record)[extractor.feature_names.index(name)]

    def test_vm_count_aggregation(self, extractor):
        assert self.feature(extractor, make_record(n_vms=7), "n_vms") == 7.0

    def test_env_passthrough(self, extractor):
        assert self.feature(extractor, make_record(env=25.5), "delta_env_c") == 25.5

    def test_airflow_product(self, extractor):
        record = make_record(fan_count=6)
        assert self.feature(extractor, record, "fan_airflow") == pytest.approx(6 * 0.7)

    def test_task_kind_histogram(self, extractor):
        record = make_record(n_vms=3, kind="bursty")
        assert self.feature(extractor, record, "tasks_bursty") == 3.0
        assert self.feature(extractor, record, "tasks_constant") == 0.0

    def test_unknown_task_kind_rejected(self, extractor):
        record = make_record()
        bad_vm = VmRecord(
            vcpus=1, memory_gb=1.0, task_kinds=("quantum",), nominal_utilization=0.5
        )
        bad = ExperimentRecord(
            theta_cpu_cores=record.theta_cpu_cores,
            theta_cpu_ghz=record.theta_cpu_ghz,
            theta_memory_gb=record.theta_memory_gb,
            theta_fan_count=record.theta_fan_count,
            theta_fan_speed=record.theta_fan_speed,
            delta_env_c=record.delta_env_c,
            vms=(bad_vm,),
        )
        with pytest.raises(FeatureError):
            extractor.extract(bad)

    def test_util_estimate_uncontended(self, extractor):
        # 3 VMs × 2 vCPU × 0.5 = 3 cores demand + 0.09 overhead on 16 cores.
        record = make_record(n_vms=3, util=0.5)
        expected = (3.0 + 0.09) / 16.0
        assert self.feature(extractor, record, "util_estimate") == pytest.approx(expected)

    def test_util_estimate_saturates_at_one(self, extractor):
        record = make_record(n_vms=12, util=1.0)  # 24 vCPUs fully busy on 16 cores
        assert self.feature(extractor, record, "util_estimate") == pytest.approx(1.0)

    def test_overtemp_proxy_is_product(self, extractor):
        record = make_record()
        ghz_used = self.feature(extractor, record, "ghz_used")
        cooling = self.feature(extractor, record, "cooling_resistance_proxy")
        assert self.feature(extractor, record, "overtemp_proxy") == pytest.approx(
            ghz_used * cooling
        )

    def test_order_invariance_over_vm_permutation(self, extractor):
        vms = (
            VmRecord(vcpus=1, memory_gb=2.0, task_kinds=("constant",), nominal_utilization=0.3),
            VmRecord(vcpus=4, memory_gb=8.0, task_kinds=("bursty",), nominal_utilization=0.7),
        )
        base = make_record()
        a = ExperimentRecord(
            theta_cpu_cores=base.theta_cpu_cores,
            theta_cpu_ghz=base.theta_cpu_ghz,
            theta_memory_gb=base.theta_memory_gb,
            theta_fan_count=base.theta_fan_count,
            theta_fan_speed=base.theta_fan_speed,
            delta_env_c=base.delta_env_c,
            vms=vms,
        )
        b = ExperimentRecord(
            theta_cpu_cores=base.theta_cpu_cores,
            theta_cpu_ghz=base.theta_cpu_ghz,
            theta_memory_gb=base.theta_memory_gb,
            theta_fan_count=base.theta_fan_count,
            theta_fan_speed=base.theta_fan_speed,
            delta_env_c=base.delta_env_c,
            vms=vms[::-1],
        )
        assert np.allclose(extractor.extract(a), extractor.extract(b))
