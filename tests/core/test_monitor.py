"""Unit tests for the online temperature monitor."""

import pytest

from repro.config import PredictionConfig, SensorConfig
from repro.core.monitor import TemperatureMonitor, record_for_server
from repro.datacenter.cluster import Cluster
from repro.datacenter.migration import migrate_vm
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import TelemetryError
from repro.rng import RngFactory
from repro.thermal.environment import ConstantEnvironment
from tests.conftest import make_server_spec, make_vm


def make_sim(n_servers=2):
    cluster = Cluster("monitored")
    for i in range(n_servers):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    sim = DatacenterSimulation(
        cluster=cluster,
        environment=ConstantEnvironment(22.0),
        rng=RngFactory(77),
        sensor_config=SensorConfig(sampling_period_s=5.0),
    )
    sim.equalize_temperatures()
    return sim


class TestRecordForServer:
    def test_captures_current_vm_set(self):
        sim = make_sim(1)
        server = sim.cluster.server("s0")
        server.host_vm(make_vm("a", vcpus=2))
        record = record_for_server(server, environment_c=23.0)
        assert record.n_vms == 1
        assert record.delta_env_c == 23.0
        assert record.metadata["online"] is True


class TestOnlineForecasting:
    def test_forecasts_accumulate(self, trained_predictor):
        sim = make_sim(1)
        sim.cluster.server("s0").host_vm(make_vm("a", vcpus=4, level=0.8, n_tasks=4))
        monitor = TemperatureMonitor(trained_predictor)
        monitor.attach(sim)
        sim.run(300.0)
        log = monitor.logs["s0"]
        assert len(log.forecasts) > 30
        assert len(log.observations) == len(log.forecasts)

    def test_forecast_query(self, trained_predictor):
        sim = make_sim(1)
        sim.cluster.server("s0").host_vm(make_vm("a", vcpus=4, level=0.8, n_tasks=4))
        monitor = TemperatureMonitor(trained_predictor)
        monitor.attach(sim)
        sim.run(120.0)
        forecast = monitor.forecast("s0")
        assert forecast.target_time_s > sim.time_s
        assert 20.0 < forecast.predicted_c < 110.0

    def test_forecast_before_samples_rejected(self, trained_predictor):
        monitor = TemperatureMonitor(trained_predictor)
        with pytest.raises(TelemetryError):
            monitor.forecast("s0")

    def test_realized_mse_reasonable_in_steady_state(self, trained_predictor):
        sim = make_sim(1)
        sim.cluster.server("s0").host_vm(make_vm("a", vcpus=4, level=0.7, n_tasks=4))
        monitor = TemperatureMonitor(trained_predictor)
        monitor.attach(sim)
        sim.run(1800.0)
        mse = monitor.logs["s0"].realized_mse()
        # Steady workload, calibrated predictor: a few degrees² at most.
        assert mse < 8.0

    def test_server_filter_restricts_monitoring(self, trained_predictor):
        sim = make_sim(2)
        monitor = TemperatureMonitor(trained_predictor, servers=["s1"])
        monitor.attach(sim)
        sim.run(60.0)
        assert "s0" not in monitor.logs
        assert "s1" in monitor.logs


class TestRetargeting:
    def test_retargets_when_vm_set_changes(self, trained_predictor):
        sim = make_sim(2)
        sim.cluster.server("s0").host_vm(make_vm("wanderer", vcpus=4, memory_gb=4.0,
                                                 level=0.9, n_tasks=4))
        monitor = TemperatureMonitor(trained_predictor)
        monitor.attach(sim)
        migrate_vm(sim, "wanderer", "s1", start_time_s=100.0)
        sim.run(400.0)
        # Destination gained a VM; source lost one: both retarget.
        assert len(monitor.logs["s1"].retargets) >= 1
        assert len(monitor.logs["s0"].retargets) >= 1

    def test_no_retarget_without_changes(self, trained_predictor):
        sim = make_sim(1)
        sim.cluster.server("s0").host_vm(make_vm("a"))
        monitor = TemperatureMonitor(trained_predictor)
        monitor.attach(sim)
        sim.run(300.0)
        assert monitor.logs["s0"].retargets == []

    def test_predicted_hotspots_ranked(self, trained_predictor):
        sim = make_sim(2)
        # s0 heavily loaded, s1 idle.
        for i in range(4):
            sim.cluster.server("s0").host_vm(
                make_vm(f"hot-{i}", vcpus=8, level=1.0, n_tasks=8)
            )
        monitor = TemperatureMonitor(trained_predictor)
        monitor.attach(sim)
        sim.run(120.0)
        forecasts = monitor.forecast_all()
        assert forecasts["s0"] > forecasts["s1"]
        threshold = (forecasts["s0"] + forecasts["s1"]) / 2.0
        assert monitor.predicted_hotspots(threshold_c=threshold) == ["s0"]
