"""Unit tests for the train/evaluate workflows."""

import pytest

from repro.core.pipeline import evaluate_stable_predictor, train_stable_predictor
from repro.errors import DatasetError
from repro.rng import RngFactory
from tests.core.test_stable import synthetic_records


class TestTrainWorkflow:
    def test_produces_fitted_predictor(self):
        report = train_stable_predictor(
            synthetic_records(30),
            n_splits=5,
            c_grid=(10.0, 100.0),
            gamma_grid=(0.05,),
            epsilon_grid=(0.1,),
            rng=RngFactory(1).stream("cv"),
        )
        assert report.predictor.is_fitted
        assert report.n_train == 30
        assert len(report.grid.trials) == 2

    def test_grid_choice_propagates_to_predictor(self):
        report = train_stable_predictor(
            synthetic_records(30),
            n_splits=5,
            c_grid=(100.0,),
            gamma_grid=(0.07,),
            epsilon_grid=(0.15,),
        )
        assert report.predictor.c == 100.0
        assert report.predictor.gamma == 0.07
        assert report.predictor.epsilon == 0.15

    def test_rejects_too_few_records_for_folds(self):
        with pytest.raises(DatasetError):
            train_stable_predictor(synthetic_records(5), n_splits=10)


class TestEvaluateWorkflow:
    def test_reports_test_metrics(self):
        records = synthetic_records(40)
        report = train_stable_predictor(
            records[:30],
            n_splits=5,
            c_grid=(100.0,),
            gamma_grid=(0.05,),
            epsilon_grid=(0.05,),
        )
        metrics = evaluate_stable_predictor(report.predictor, records[30:])
        assert metrics["n"] == 10.0
        assert metrics["mse"] < 2.0

    def test_rejects_empty_test_set(self):
        report = train_stable_predictor(
            synthetic_records(20),
            n_splits=5,
            c_grid=(10.0,),
            gamma_grid=(0.05,),
            epsilon_grid=(0.1,),
        )
        with pytest.raises(DatasetError):
            evaluate_stable_predictor(report.predictor, [])
