"""Unit tests for the runtime calibrator (Eq. 4–7)."""

import pytest

from repro.core.calibration import RuntimeCalibrator
from repro.errors import ConfigurationError


class TestPaperExample:
    """The worked example of §II: λ=0.8, γ starts at 0."""

    def test_gamma_starts_at_zero(self):
        assert RuntimeCalibrator().gamma == 0.0

    def test_first_update_follows_eq6(self):
        calibrator = RuntimeCalibrator(learning_rate=0.8)
        # φ(15)=52.0, ψ*(15)=50.0 → dif = 2.0 → γ = 0.8·2.0.
        gamma = calibrator.update(15.0, measured_c=52.0, curve_value_c=50.0)
        assert gamma == pytest.approx(1.6)

    def test_second_update_uses_previous_gamma(self):
        calibrator = RuntimeCalibrator(learning_rate=0.8)
        calibrator.update(15.0, 52.0, 50.0)  # γ = 1.6
        # dif = 53.0 − (51.0 + 1.6) = 0.4 → γ = 1.6 + 0.32.
        gamma = calibrator.update(30.0, 53.0, 51.0)
        assert gamma == pytest.approx(1.92)

    def test_correct_applies_gamma(self):
        calibrator = RuntimeCalibrator(learning_rate=0.8)
        calibrator.update(15.0, 52.0, 50.0)
        assert calibrator.correct(60.0) == pytest.approx(61.6)


class TestConvergence:
    def test_constant_offset_absorbed_geometrically(self):
        # Measured is always curve + 5: γ converges to 5 at rate (1−λ).
        calibrator = RuntimeCalibrator(learning_rate=0.8)
        for step in range(12):
            calibrator.update(float(step), measured_c=55.0, curve_value_c=50.0)
        assert calibrator.gamma == pytest.approx(5.0, abs=1e-6)

    def test_zero_learning_rate_never_calibrates(self):
        calibrator = RuntimeCalibrator(learning_rate=0.0)
        calibrator.update(0.0, 99.0, 50.0)
        assert calibrator.gamma == 0.0

    def test_unit_learning_rate_jumps_to_offset(self):
        calibrator = RuntimeCalibrator(learning_rate=1.0)
        calibrator.update(0.0, 57.0, 50.0)
        assert calibrator.gamma == pytest.approx(7.0)

    def test_perfect_curve_keeps_gamma_zero(self):
        calibrator = RuntimeCalibrator(learning_rate=0.8)
        for step in range(5):
            calibrator.update(float(step), measured_c=50.0, curve_value_c=50.0)
        assert calibrator.gamma == 0.0


class TestBookkeeping:
    def test_history_records_every_update(self):
        calibrator = RuntimeCalibrator()
        calibrator.update(15.0, 52.0, 50.0)
        calibrator.update(30.0, 53.0, 51.0)
        history = calibrator.history
        assert len(history) == 2
        assert history[0].time_s == 15.0
        assert history[0].dif == pytest.approx(2.0)
        assert history[1].gamma_after == calibrator.gamma

    def test_reset_clears_state(self):
        calibrator = RuntimeCalibrator()
        calibrator.update(15.0, 52.0, 50.0)
        calibrator.reset()
        assert calibrator.gamma == 0.0
        assert calibrator.history == []

    def test_rejects_learning_rate_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            RuntimeCalibrator(learning_rate=1.5)
        with pytest.raises(ConfigurationError):
            RuntimeCalibrator(learning_rate=-0.1)
