"""Unit tests for the prior-art baselines."""

import pytest

from repro.core.baselines import RcFitBaseline, TaskProfileBaseline, dominant_task_kind
from repro.errors import DatasetError, NotFittedError
from tests.conftest import make_record


class TestDominantKind:
    def test_majority_wins(self):
        record = make_record(n_vms=3, kind="bursty")
        assert dominant_task_kind(record) == "bursty"

    def test_no_tasks_is_idle(self):
        record = make_record(n_vms=0)
        assert dominant_task_kind(record) == "idle"


class TestTaskProfileBaseline:
    def test_profiles_catalogue_kind_means(self):
        records = [
            make_record(psi=50.0, kind="constant"),
            make_record(psi=54.0, kind="constant"),
            make_record(psi=70.0, kind="bursty"),
        ]
        baseline = TaskProfileBaseline().fit(records)
        assert baseline.profiles["constant"] == pytest.approx(52.0)
        assert baseline.profiles["bursty"] == pytest.approx(70.0)

    def test_prediction_looks_up_dominant_kind(self):
        records = [
            make_record(psi=50.0, kind="constant"),
            make_record(psi=70.0, kind="bursty"),
        ]
        baseline = TaskProfileBaseline().fit(records)
        assert baseline.predict(make_record(kind="bursty")) == pytest.approx(70.0)

    def test_unknown_kind_falls_back_to_global_mean(self):
        records = [
            make_record(psi=50.0, kind="constant"),
            make_record(psi=70.0, kind="constant"),
        ]
        baseline = TaskProfileBaseline().fit(records)
        assert baseline.predict(make_record(kind="ramp")) == pytest.approx(60.0)

    def test_blind_to_vm_count(self):
        # The core failure mode the paper attacks: the profile cannot see
        # multi-tenancy, so 2 VMs and 12 VMs predict the same.
        records = [make_record(psi=55.0, n_vms=2), make_record(psi=85.0, n_vms=12)]
        baseline = TaskProfileBaseline().fit(records)
        assert baseline.predict(make_record(n_vms=2)) == baseline.predict(
            make_record(n_vms=12)
        )

    def test_fit_requires_records(self):
        with pytest.raises(DatasetError):
            TaskProfileBaseline().fit([])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            TaskProfileBaseline().predict(make_record())

    def test_evaluate_shape(self):
        records = [make_record(psi=50.0 + i) for i in range(5)]
        baseline = TaskProfileBaseline().fit(records)
        metrics = baseline.evaluate(records)
        assert set(metrics) == {"mse", "rmse", "mae", "r2", "n"}


class TestRcFitBaseline:
    def make_linear_records(self):
        # ψ = env + 5 + 2·demand (demand = n_vms·2·util); capacity constant.
        records = []
        for n_vms in (2, 4, 6, 8):
            for util in (0.25, 0.5, 0.75):
                demand = n_vms * 2 * util
                for env in (18.0, 24.0):
                    records.append(
                        make_record(psi=env + 5.0 + 2.0 * demand, n_vms=n_vms,
                                    util=util, env=env)
                    )
        return records

    def test_recovers_affine_law(self):
        baseline = RcFitBaseline().fit(self.make_linear_records())
        metrics = baseline.evaluate(self.make_linear_records())
        assert metrics["mse"] < 1e-12

    def test_tracks_ambient_exactly(self):
        baseline = RcFitBaseline().fit(self.make_linear_records())
        cold = baseline.predict(make_record(env=18.0))
        warm = baseline.predict(make_record(env=28.0))
        assert warm - cold == pytest.approx(10.0)

    def test_blind_to_fan_state(self):
        baseline = RcFitBaseline().fit(self.make_linear_records())
        few_fans = baseline.predict(make_record(fan_count=2))
        many_fans = baseline.predict(make_record(fan_count=8))
        assert few_fans == pytest.approx(many_fans)

    def test_fit_requires_three_records(self):
        with pytest.raises(DatasetError):
            RcFitBaseline().fit([make_record(), make_record()])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            RcFitBaseline().predict(make_record())

    def test_coefficients_exposed(self):
        baseline = RcFitBaseline().fit(self.make_linear_records())
        assert baseline.coefficients.shape == (3,)

    def test_clone_unfitted(self):
        baseline = RcFitBaseline().fit(self.make_linear_records())
        with pytest.raises(NotFittedError):
            baseline.clone().predict(make_record())
