"""Unit tests for the pre-defined temperature curve (Eq. 3)."""

import pytest

from repro.core.curve import PredefinedCurve
from repro.errors import ConfigurationError


def curve(phi0=40.0, psi=70.0, t_break=600.0, delta=0.05, origin=0.0):
    return PredefinedCurve(
        phi_0=phi0, psi_stable=psi, t_break_s=t_break, delta=delta, origin_s=origin
    )


class TestEndpoints:
    def test_starts_at_phi0(self):
        assert curve().value(0.0) == pytest.approx(40.0)

    def test_reaches_psi_stable_at_t_break(self):
        assert curve().value(600.0) == pytest.approx(70.0)

    def test_constant_after_t_break(self):
        c = curve()
        assert c.value(600.0) == c.value(601.0) == c.value(1e6) == 70.0

    def test_clamps_before_origin(self):
        assert curve().value(-50.0) == 40.0


class TestShape:
    def test_monotone_rising(self):
        c = curve()
        values = [c.value(t) for t in range(0, 601, 10)]
        assert values == sorted(values)

    def test_monotone_falling_when_cooling(self):
        c = curve(phi0=70.0, psi=40.0)
        values = [c.value(t) for t in range(0, 601, 10)]
        assert values == sorted(values, reverse=True)

    def test_logarithmic_front_loading(self):
        # The log curve covers more than half the rise by t_break/2.
        c = curve()
        midpoint_rise = (c.value(300.0) - 40.0) / 30.0
        assert midpoint_rise > 0.5

    def test_larger_delta_rises_faster_early(self):
        shallow = curve(delta=0.01)
        steep = curve(delta=0.5)
        assert steep.value(60.0) > shallow.value(60.0)

    def test_flat_curve_when_already_stable(self):
        c = curve(phi0=55.0, psi=55.0)
        assert c.value(123.0) == 55.0

    def test_values_between_endpoints(self):
        c = curve()
        for t in range(1, 600, 13):
            assert 40.0 < c.value(float(t)) < 70.0


class TestAnchoring:
    def test_origin_shifts_time_axis(self):
        base = curve(origin=0.0)
        shifted = curve(origin=1000.0)
        assert shifted.value(1000.0 + 123.0) == pytest.approx(base.value(123.0))

    def test_retargeted_keeps_shape_parameters(self):
        c = curve(t_break=300.0, delta=0.1)
        fresh = c.retargeted(origin_s=500.0, phi_0=60.0, psi_stable=52.0)
        assert fresh.t_break_s == 300.0
        assert fresh.delta == 0.1
        assert fresh.value(500.0) == 60.0
        assert fresh.value(800.0) == 52.0

    def test_is_saturated(self):
        c = curve(origin=100.0)
        assert not c.is_saturated(100.0)
        assert not c.is_saturated(600.0)
        assert c.is_saturated(700.0)

    def test_callable_and_vector_forms(self):
        c = curve()
        assert c(50.0) == c.value(50.0)
        assert c.values([0.0, 600.0]) == [pytest.approx(40.0), pytest.approx(70.0)]


class TestValidation:
    def test_rejects_nonpositive_t_break(self):
        with pytest.raises(ConfigurationError):
            curve(t_break=0.0)

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ConfigurationError):
            curve(delta=0.0)
