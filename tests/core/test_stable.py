"""Unit tests for the stable temperature predictor (Eq. 1–2 model)."""

import pytest

from repro.core.stable import StableTemperaturePredictor
from repro.errors import DatasetError, NotFittedError
from tests.conftest import make_record


def synthetic_records(n=40):
    """Records whose ψ_stable is a deterministic function of the inputs."""
    records = []
    for i in range(n):
        n_vms = 2 + (i % 6)
        util = 0.2 + 0.1 * (i % 7)
        env = 18.0 + (i % 5) * 2.0
        psi = env + 10.0 + 3.0 * n_vms * util
        records.append(make_record(psi=psi, n_vms=n_vms, util=util, env=env))
    return records


class TestTraining:
    def test_learns_synthetic_relationship(self):
        records = synthetic_records()
        model = StableTemperaturePredictor(c=100.0, gamma=0.05, epsilon=0.05)
        model.fit(records[:30])
        metrics = model.evaluate(records[30:])
        assert metrics["mse"] < 1.0
        assert metrics["r2"] > 0.9

    def test_predict_single_record(self):
        records = synthetic_records()
        model = StableTemperaturePredictor().fit(records)
        value = model.predict(records[0])
        assert isinstance(value, float)
        assert 20.0 < value < 100.0

    def test_predict_many_shape(self):
        records = synthetic_records()
        model = StableTemperaturePredictor().fit(records)
        assert model.predict_many(records[:5]).shape == (5,)

    def test_learns_on_simulated_records(self, experiment_records, trained_predictor):
        metrics = trained_predictor.evaluate(experiment_records)
        # In-sample on real simulated data: must clearly beat predicting
        # the mean (sanity, not a benchmark).
        assert metrics["r2"] > 0.8

    def test_evaluate_reports_all_metrics(self):
        records = synthetic_records()
        model = StableTemperaturePredictor().fit(records)
        metrics = model.evaluate(records)
        assert set(metrics) == {"mse", "rmse", "mae", "r2", "n"}


class TestStatefulness:
    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            StableTemperaturePredictor().predict(make_record())

    def test_fit_requires_two_records(self):
        with pytest.raises(DatasetError):
            StableTemperaturePredictor().fit([make_record()])

    def test_fit_requires_outputs(self):
        with pytest.raises(DatasetError):
            StableTemperaturePredictor().fit([make_record(psi=None), make_record()])

    def test_clone_copies_hyperparameters(self):
        model = StableTemperaturePredictor(c=5.0, gamma=0.3, epsilon=0.2)
        clone = model.clone()
        assert (clone.c, clone.gamma, clone.epsilon) == (5.0, 0.3, 0.2)
        assert not clone.is_fitted

    def test_is_fitted_flag(self):
        model = StableTemperaturePredictor()
        assert not model.is_fitted
        model.fit(synthetic_records(10))
        assert model.is_fitted
