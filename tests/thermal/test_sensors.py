"""Unit tests for the temperature sensor model."""

import pytest

from repro.config import SensorConfig
from repro.rng import RngStream
from repro.thermal.sensors import TemperatureSensor


def make_sensor(noise=0.0, quant=0.0, period=5.0, seed=1) -> TemperatureSensor:
    return TemperatureSensor(
        SensorConfig(sampling_period_s=period, noise_std_c=noise, quantization_c=quant),
        RngStream(seed, "sensor"),
    )


class TestRead:
    def test_noiseless_unquantized_reads_truth(self):
        sensor = make_sensor()
        assert sensor.read(0.0, 55.3).temperature_c == pytest.approx(55.3)

    def test_quantization_snaps_to_grid(self):
        sensor = make_sensor(quant=0.5)
        value = sensor.read(0.0, 55.30).temperature_c
        assert value == pytest.approx(55.5)
        assert (value / 0.5) == pytest.approx(round(value / 0.5))

    def test_noise_has_roughly_configured_spread(self):
        sensor = make_sensor(noise=1.0)
        readings = [sensor.read(float(i), 50.0).temperature_c for i in range(4000)]
        mean = sum(readings) / len(readings)
        var = sum((r - mean) ** 2 for r in readings) / len(readings)
        assert mean == pytest.approx(50.0, abs=0.1)
        assert var == pytest.approx(1.0, rel=0.15)

    def test_readings_accumulate(self):
        sensor = make_sensor()
        sensor.read(0.0, 50.0)
        sensor.read(1.0, 51.0)
        assert len(sensor.readings) == 2


class TestSamplingSchedule:
    def test_samples_on_period(self):
        sensor = make_sensor(period=5.0)
        sampled = [
            t for t in range(0, 21) if sensor.maybe_sample(float(t), 50.0) is not None
        ]
        assert sampled == [0, 5, 10, 15, 20]

    def test_skips_between_periods(self):
        sensor = make_sensor(period=10.0)
        assert sensor.maybe_sample(0.0, 50.0) is not None
        assert sensor.maybe_sample(3.0, 50.0) is None
        assert sensor.maybe_sample(9.9, 50.0) is None

    def test_reanchors_after_time_jump(self):
        sensor = make_sensor(period=5.0)
        sensor.maybe_sample(0.0, 50.0)
        # Jump far past several periods: one sample, then regular schedule.
        assert sensor.maybe_sample(32.0, 50.0) is not None
        assert sensor.maybe_sample(33.0, 50.0) is None
        assert sensor.maybe_sample(37.0, 50.0) is not None


class TestWindows:
    def test_mean_between_uses_half_open_window(self):
        sensor = make_sensor(period=1.0)
        for t in range(10):
            sensor.maybe_sample(float(t), float(t))
        # [2, 5) → samples at 2, 3, 4
        assert sensor.mean_between(2.0, 5.0) == pytest.approx(3.0)

    def test_mean_between_empty_window_raises(self):
        sensor = make_sensor()
        with pytest.raises(ValueError):
            sensor.mean_between(0.0, 1.0)

    def test_reset_clears_history_and_schedule(self):
        sensor = make_sensor(period=5.0)
        sensor.maybe_sample(0.0, 50.0)
        sensor.reset()
        assert sensor.readings == []
        assert sensor.maybe_sample(0.0, 50.0) is not None
