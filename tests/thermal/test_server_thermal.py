"""Unit tests for the assembled server thermal plant."""

import pytest

from repro.config import ThermalConfig
from repro.errors import SimulationError
from repro.thermal.fan import FanBank
from repro.thermal.power import CpuPowerModel
from repro.thermal.server_thermal import ServerThermalModel


def make_plant(fans: FanBank | None = None, initial: float = 22.0) -> ServerThermalModel:
    return ServerThermalModel(
        power_model=CpuPowerModel.for_capacity(total_ghz=38.4, memory_gb=64.0),
        fans=fans or FanBank(count=4, speed=0.7),
        initial_temperature_c=initial,
    )


class TestSteadyState:
    def test_loaded_hotter_than_idle(self):
        plant = make_plant()
        idle = plant.steady_state_cpu_temperature(0.0, 22.0)
        loaded = plant.steady_state_cpu_temperature(1.0, 22.0)
        assert loaded > idle > 22.0

    def test_plausible_commodity_temperatures(self):
        plant = make_plant()
        idle = plant.steady_state_cpu_temperature(0.0, 22.0)
        loaded = plant.steady_state_cpu_temperature(1.0, 22.0)
        assert 30.0 < idle < 55.0
        assert 60.0 < loaded < 95.0

    def test_ambient_shifts_steady_state_linearly(self):
        plant = make_plant()
        t20 = plant.steady_state_cpu_temperature(0.5, 20.0)
        t26 = plant.steady_state_cpu_temperature(0.5, 26.0)
        assert t26 - t20 == pytest.approx(6.0, abs=1e-9)

    def test_more_fans_cooler(self):
        weak = make_plant(FanBank(count=2, speed=0.7))
        strong = make_plant(FanBank(count=8, speed=0.7))
        assert strong.steady_state_cpu_temperature(
            0.8, 22.0
        ) < weak.steady_state_cpu_temperature(0.8, 22.0)


class TestDynamics:
    def test_converges_to_steady_state(self):
        plant = make_plant()
        target = plant.steady_state_cpu_temperature(0.7, 22.0)
        plant.advance(4000.0, utilization=0.7, ambient_c=22.0)
        assert plant.cpu_temperature_c == pytest.approx(target, abs=0.05)

    def test_mostly_settled_within_t_break(self):
        # The paper's t_break=600 s premise: the transient is mostly done.
        plant = make_plant()
        start = plant.cpu_temperature_c
        target = plant.steady_state_cpu_temperature(0.9, 22.0)
        plant.advance(600.0, utilization=0.9, ambient_c=22.0)
        progress = (plant.cpu_temperature_c - start) / (target - start)
        assert progress > 0.9

    def test_monotone_rise_under_constant_load(self):
        plant = make_plant()
        temps = []
        for _ in range(60):
            plant.advance(10.0, utilization=0.8, ambient_c=22.0)
            temps.append(plant.cpu_temperature_c)
        assert temps == sorted(temps)

    def test_fan_change_mid_run_cools_plant(self):
        plant = make_plant(FanBank(count=2, speed=0.5))
        plant.advance(2000.0, utilization=0.8, ambient_c=22.0)
        hot = plant.cpu_temperature_c
        plant.set_fans(FanBank(count=8, speed=1.0))
        plant.advance(2000.0, utilization=0.8, ambient_c=22.0)
        assert plant.cpu_temperature_c < hot - 2.0

    def test_rejects_nonpositive_step(self):
        plant = make_plant()
        with pytest.raises(SimulationError):
            plant.step(0.0, 0.5, 22.0)


class TestConfigCoupling:
    def test_time_constant_estimate_positive_and_bounded(self):
        plant = make_plant()
        tau = plant.dominant_time_constant_s()
        assert 0.0 < tau < 3600.0

    def test_custom_config_respected(self):
        config = ThermalConfig(cpu_to_case_resistance_k_per_w=0.36)
        plant = ServerThermalModel(
            power_model=CpuPowerModel(),
            fans=FanBank(),
            config=config,
        )
        default = make_plant()
        assert plant.steady_state_cpu_temperature(
            1.0, 22.0
        ) > default.steady_state_cpu_temperature(1.0, 22.0)

    def test_set_temperatures_forces_state(self):
        plant = make_plant()
        plant.set_temperatures(70.0, 40.0)
        assert plant.cpu_temperature_c == 70.0
        assert plant.case_temperature_c == 40.0
