"""Unit tests for the fixed-step ODE integrators."""

import math

import pytest

from repro.thermal.solver import euler_step, integrate, rk4_step


def decay(_t, y):
    """y' = -y, analytic solution y0·exp(-t)."""
    return [-yi for yi in y]


class TestSteppers:
    def test_euler_single_step(self):
        y = euler_step(decay, 0.0, [1.0], 0.1)
        assert y[0] == pytest.approx(0.9)

    def test_rk4_single_step_close_to_exact(self):
        y = rk4_step(decay, 0.0, [1.0], 0.1)
        assert y[0] == pytest.approx(math.exp(-0.1), abs=1e-7)

    def test_rk4_more_accurate_than_euler(self):
        exact = math.exp(-0.5)
        e = euler_step(decay, 0.0, [1.0], 0.5)[0]
        r = rk4_step(decay, 0.0, [1.0], 0.5)[0]
        assert abs(r - exact) < abs(e - exact)

    def test_multidimensional_state(self):
        y = rk4_step(lambda t, y: [y[1], -y[0]], 0.0, [1.0, 0.0], 0.01)
        assert y[0] == pytest.approx(math.cos(0.01), abs=1e-8)
        assert y[1] == pytest.approx(-math.sin(0.01), abs=1e-8)


class TestIntegrate:
    def test_endpoints_included(self):
        times, states = integrate(decay, [1.0], 0.0, 1.0, 0.25)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(1.0)
        assert len(times) == len(states)

    def test_final_partial_step_lands_exactly(self):
        times, _ = integrate(decay, [1.0], 0.0, 1.0, 0.3)
        assert times[-1] == pytest.approx(1.0)

    def test_euler_converges_with_step_refinement(self):
        exact = math.exp(-1.0)
        _, coarse = integrate(decay, [1.0], 0.0, 1.0, 0.1)
        _, fine = integrate(decay, [1.0], 0.0, 1.0, 0.01)
        assert abs(fine[-1][0] - exact) < abs(coarse[-1][0] - exact)

    def test_rk4_method_selectable(self):
        _, states = integrate(decay, [1.0], 0.0, 1.0, 0.1, method="rk4")
        assert states[-1][0] == pytest.approx(math.exp(-1.0), abs=1e-6)

    def test_zero_span_returns_initial(self):
        times, states = integrate(decay, [2.0], 5.0, 5.0, 0.1)
        assert times == [5.0]
        assert states == [[2.0]]

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError):
            integrate(decay, [1.0], 0.0, 1.0, 0.1, method="heun")

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            integrate(decay, [1.0], 0.0, 1.0, 0.0)

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            integrate(decay, [1.0], 1.0, 0.0, 0.1)
