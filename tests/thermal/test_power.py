"""Unit tests for the CPU power model."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.power import CpuPowerModel


class TestPowerCurve:
    def test_idle_power_at_zero_utilization(self):
        model = CpuPowerModel(idle_power_w=60.0, max_power_w=240.0, memory_gb=0.0)
        assert model.power(0.0) == pytest.approx(60.0)

    def test_max_power_at_full_utilization(self):
        model = CpuPowerModel(idle_power_w=60.0, max_power_w=240.0, memory_gb=0.0)
        assert model.power(1.0) == pytest.approx(240.0)

    def test_memory_power_adds_static_term(self):
        bare = CpuPowerModel(memory_gb=0.0)
        loaded = CpuPowerModel(memory_gb=64.0, memory_power_w_per_gb=0.35)
        assert loaded.power(0.0) - bare.power(0.0) == pytest.approx(64.0 * 0.35)

    def test_power_is_monotone_in_utilization(self):
        model = CpuPowerModel()
        powers = [model.power(u / 10.0) for u in range(11)]
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_superlinearity_below_midpoint(self):
        # u^1.25 at u=0.5 is below linear: the dynamic part at half load
        # must be less than half of the dynamic span.
        model = CpuPowerModel(idle_power_w=0.0, max_power_w=100.0, memory_gb=0.0)
        assert model.power(0.5) < 50.0

    def test_utilization_clamped_above_one(self):
        model = CpuPowerModel()
        assert model.power(1.5) == pytest.approx(model.power(1.0))

    def test_utilization_clamped_below_zero(self):
        model = CpuPowerModel()
        assert model.power(-0.5) == pytest.approx(model.power(0.0))


class TestInverse:
    def test_round_trip_inside_range(self):
        model = CpuPowerModel(memory_gb=32.0)
        for u in (0.1, 0.35, 0.6, 0.95):
            assert model.utilization_for_power(model.power(u)) == pytest.approx(u, abs=1e-9)

    def test_below_base_power_maps_to_zero(self):
        model = CpuPowerModel()
        assert model.utilization_for_power(0.0) == 0.0

    def test_above_max_power_clamps_to_one(self):
        model = CpuPowerModel()
        assert model.utilization_for_power(10_000.0) == 1.0


class TestForCapacity:
    def test_scales_with_ghz(self):
        small = CpuPowerModel.for_capacity(total_ghz=16.0, memory_gb=32.0)
        big = CpuPowerModel.for_capacity(total_ghz=96.0, memory_gb=32.0)
        assert big.idle_power_w > small.idle_power_w
        assert big.max_power_w > small.max_power_w

    def test_commodity_box_lands_in_plausible_band(self):
        model = CpuPowerModel.for_capacity(total_ghz=38.4, memory_gb=64.0)
        assert 50.0 < model.power(0.0) < 150.0
        assert 200.0 < model.power(1.0) < 350.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel.for_capacity(total_ghz=0.0, memory_gb=16.0)


class TestValidation:
    def test_rejects_max_below_idle(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel(idle_power_w=100.0, max_power_w=50.0)

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel(idle_power_w=-1.0)

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel(exponent=0.0)

    def test_rejects_negative_memory_rate(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel(memory_power_w_per_gb=-0.1)
