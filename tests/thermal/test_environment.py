"""Unit tests for environment temperature profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.environment import (
    ConstantEnvironment,
    SinusoidalEnvironment,
    SteppedEnvironment,
)


class TestConstant:
    def test_constant_everywhere(self):
        env = ConstantEnvironment(23.5)
        assert env.temperature(0.0) == 23.5
        assert env.temperature(1e6) == 23.5

    def test_mean_over_equals_value(self):
        env = ConstantEnvironment(21.0)
        assert env.mean_over(0.0, 3600.0) == pytest.approx(21.0)


class TestSinusoidal:
    def test_oscillates_around_mean(self):
        env = SinusoidalEnvironment(mean_c=22.0, amplitude_c=2.0, period_s=100.0)
        quarter = env.temperature(25.0)
        three_quarter = env.temperature(75.0)
        assert quarter == pytest.approx(24.0)
        assert three_quarter == pytest.approx(20.0)

    def test_period_repeats(self):
        env = SinusoidalEnvironment(period_s=100.0)
        assert env.temperature(13.0) == pytest.approx(env.temperature(113.0))

    def test_mean_over_full_period_is_mean(self):
        env = SinusoidalEnvironment(mean_c=22.0, amplitude_c=3.0, period_s=128.0)
        assert env.mean_over(0.0, 128.0, samples=128) == pytest.approx(22.0, abs=1e-6)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            SinusoidalEnvironment(period_s=0.0)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ConfigurationError):
            SinusoidalEnvironment(amplitude_c=-1.0)


class TestStepped:
    def test_initial_value_before_first_step(self):
        env = SteppedEnvironment(initial_c=20.0, steps=((100.0, 25.0),))
        assert env.temperature(50.0) == 20.0

    def test_steps_apply_at_their_time(self):
        env = SteppedEnvironment(initial_c=20.0, steps=((100.0, 25.0), (200.0, 18.0)))
        assert env.temperature(100.0) == 25.0
        assert env.temperature(150.0) == 25.0
        assert env.temperature(200.0) == 18.0
        assert env.temperature(1e9) == 18.0

    def test_rejects_unsorted_steps(self):
        with pytest.raises(ConfigurationError):
            SteppedEnvironment(steps=((200.0, 25.0), (100.0, 18.0)))

    def test_mean_over_spans_steps(self):
        env = SteppedEnvironment(initial_c=20.0, steps=((50.0, 30.0),))
        # Half the window at 20, half at 30.
        assert env.mean_over(0.0, 100.0, samples=1000) == pytest.approx(25.0, abs=0.1)
