"""Unit tests for the fan bank model."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.fan import (
    CONVECTION_EXPONENT,
    REFERENCE_FAN_COUNT,
    REFERENCE_FAN_SPEED,
    FanBank,
)


class TestAirflowAndResistance:
    def test_reference_point_has_unit_scale(self):
        bank = FanBank(count=REFERENCE_FAN_COUNT, speed=REFERENCE_FAN_SPEED)
        assert bank.resistance_scale() == pytest.approx(1.0)

    def test_more_fans_lower_resistance(self):
        few = FanBank(count=2, speed=0.7)
        many = FanBank(count=8, speed=0.7)
        assert many.resistance_scale() < few.resistance_scale()

    def test_faster_fans_lower_resistance(self):
        slow = FanBank(count=4, speed=0.4)
        fast = FanBank(count=4, speed=1.0)
        assert fast.resistance_scale() < slow.resistance_scale()

    def test_power_law_exponent(self):
        bank = FanBank(count=8, speed=0.7)
        ratio = bank.airflow / bank.reference_airflow
        assert bank.resistance_scale() == pytest.approx(ratio**-CONVECTION_EXPONENT)

    def test_airflow_floor_bounds_resistance(self):
        # A single fan at minimum speed must yield a finite scale.
        crawling = FanBank(count=1, speed=0.01)
        assert crawling.resistance_scale() == pytest.approx(
            (1.0 / 0.2) ** CONVECTION_EXPONENT
        )


class TestFanPower:
    def test_cubic_affinity_law(self):
        half = FanBank(count=4, speed=0.5, max_power_w_per_fan=10.0)
        full = FanBank(count=4, speed=1.0, max_power_w_per_fan=10.0)
        assert full.power_w() == pytest.approx(40.0)
        assert half.power_w() == pytest.approx(40.0 * 0.125)

    def test_power_scales_with_count(self):
        assert FanBank(count=8, speed=0.5).power_w() == pytest.approx(
            2.0 * FanBank(count=4, speed=0.5).power_w()
        )


class TestCopies:
    def test_with_speed_returns_new_bank(self):
        bank = FanBank(count=4, speed=0.5)
        faster = bank.with_speed(0.9)
        assert faster.speed == 0.9
        assert faster.count == 4
        assert bank.speed == 0.5

    def test_with_count_returns_new_bank(self):
        bank = FanBank(count=4, speed=0.5)
        bigger = bank.with_count(6)
        assert bigger.count == 6
        assert bigger.speed == 0.5


class TestValidation:
    def test_rejects_zero_fans(self):
        with pytest.raises(ConfigurationError):
            FanBank(count=0)

    def test_rejects_zero_speed(self):
        with pytest.raises(ConfigurationError):
            FanBank(speed=0.0)

    def test_rejects_speed_above_one(self):
        with pytest.raises(ConfigurationError):
            FanBank(speed=1.1)

    def test_rejects_negative_fan_power(self):
        with pytest.raises(ConfigurationError):
            FanBank(max_power_w_per_fan=-1.0)
