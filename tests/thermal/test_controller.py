"""Unit tests for the closed-loop fan controller."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.controller import FanController, FanControllerConfig
from tests.conftest import make_server_spec, make_vm
from repro.datacenter.server import Server


def loaded_server(level=1.0) -> Server:
    server = Server(make_server_spec(fan_speed=0.4))
    server.host_vm(make_vm("hot", vcpus=8, level=level, n_tasks=8))
    return server


class TestControlLaw:
    def test_hot_reading_raises_speed(self):
        server = loaded_server()
        controller = FanController(server, FanControllerConfig(setpoint_c=65.0))
        before = server.fans.speed
        controller.update(0.0, measured_c=80.0)
        assert server.fans.speed > before

    def test_cool_reading_keeps_speed_low(self):
        server = loaded_server()
        controller = FanController(server, FanControllerConfig(setpoint_c=65.0))
        controller.update(0.0, measured_c=40.0)
        assert server.fans.speed == pytest.approx(
            controller.config.min_speed
        )

    def test_speed_saturates_at_max(self):
        server = loaded_server()
        controller = FanController(server, FanControllerConfig(setpoint_c=65.0))
        controller.update(0.0, measured_c=200.0)
        assert server.fans.speed == controller.config.max_speed

    def test_respects_control_period(self):
        server = loaded_server()
        controller = FanController(
            server, FanControllerConfig(setpoint_c=65.0, period_s=10.0)
        )
        assert controller.update(0.0, 80.0) is not None
        assert controller.update(5.0, 80.0) is None
        assert controller.update(10.0, 80.0) is not None

    def test_actions_logged(self):
        server = loaded_server()
        controller = FanController(server)
        controller.update(0.0, 80.0)
        controller.update(20.0, 80.0)
        assert len(controller.actions) == 2

    def test_reset_clears_state(self):
        server = loaded_server()
        controller = FanController(server)
        controller.update(0.0, 90.0)
        controller.reset()
        assert controller.actions == []
        assert controller.update(0.0, 90.0) is not None


class TestClosedLoopRegulation:
    def test_holds_setpoint_under_load(self):
        """Run the plant under full load with the controller in the loop:
        the steady temperature must settle near the set-point, which a
        fixed low fan speed cannot achieve."""
        server = loaded_server(level=1.0)
        config = FanControllerConfig(setpoint_c=70.0, period_s=5.0)
        controller = FanController(server, config)
        for t in range(4000):
            server.step_thermal(1.0, float(t), ambient_c=22.0)
            controller.update(float(t), server.thermal.cpu_temperature_c)
        settled = server.thermal.cpu_temperature_c
        assert settled == pytest.approx(70.0, abs=4.0)

    def test_integral_term_removes_offset(self):
        """With ki > 0 the residual error shrinks versus pure-P control."""
        def run(ki):
            server = loaded_server(level=0.9)
            config = FanControllerConfig(setpoint_c=70.0, kp=0.02, ki=ki, period_s=5.0)
            controller = FanController(server, config)
            for t in range(6000):
                server.step_thermal(1.0, float(t), ambient_c=22.0)
                controller.update(float(t), server.thermal.cpu_temperature_c)
            return abs(server.thermal.cpu_temperature_c - 70.0)

        assert run(ki=0.0005) < run(ki=0.0) + 1e-9


class TestValidation:
    def test_rejects_bad_speed_band(self):
        with pytest.raises(ConfigurationError):
            FanControllerConfig(min_speed=0.9, max_speed=0.5)

    def test_rejects_negative_gains(self):
        with pytest.raises(ConfigurationError):
            FanControllerConfig(kp=-0.1)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            FanControllerConfig(period_s=0.0)
