"""Unit tests for the RC thermal network."""

import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.rc import RcNetwork, ThermalNode


def single_lump(c: float = 100.0, r: float = 0.5) -> RcNetwork:
    net = RcNetwork(nodes=[ThermalNode("lump", c, ambient_resistance_k_per_w=r)])
    net.set_all_temperatures(20.0)
    return net


def two_lump_chain() -> RcNetwork:
    net = RcNetwork(
        nodes=[
            ThermalNode("cpu", 150.0),
            ThermalNode("case", 2000.0, ambient_resistance_k_per_w=0.06),
        ]
    )
    net.connect("cpu", "case", 0.18)
    net.set_all_temperatures(22.0)
    return net


class TestSingleLump:
    def test_steady_state_matches_analytic(self):
        net = single_lump(c=100.0, r=0.5)
        # T_ss = T_amb + P·R
        ss = net.steady_state({"lump": 100.0}, ambient_c=20.0)
        assert ss["lump"] == pytest.approx(20.0 + 100.0 * 0.5)

    def test_transient_matches_exponential(self):
        c, r, p, amb = 100.0, 0.5, 100.0, 20.0
        net = single_lump(c=c, r=r)
        dt, t_end = 0.05, 100.0
        steps = int(t_end / dt)
        for _ in range(steps):
            net.step(dt, {"lump": p}, amb)
        tau = r * c
        expected = amb + p * r * (1.0 - math.exp(-t_end / tau))
        assert net.temperature("lump") == pytest.approx(expected, abs=0.05)

    def test_no_power_relaxes_to_ambient(self):
        net = single_lump()
        net.set_temperature("lump", 80.0)
        for _ in range(100_000):
            net.step(0.1, {}, 20.0)
        assert net.temperature("lump") == pytest.approx(20.0, abs=1e-3)


class TestTwoLumpChain:
    def test_steady_state_series_resistance(self):
        net = two_lump_chain()
        p = 150.0
        ss = net.steady_state({"cpu": p}, ambient_c=22.0)
        assert ss["case"] == pytest.approx(22.0 + p * 0.06)
        assert ss["cpu"] == pytest.approx(22.0 + p * (0.06 + 0.18))

    def test_power_into_case_heats_case_only_path(self):
        net = two_lump_chain()
        ss = net.steady_state({"case": 50.0}, ambient_c=22.0)
        # Heat injected at the case does not flow through the die
        # resistance, so the cpu equals the case in steady state.
        assert ss["cpu"] == pytest.approx(ss["case"])
        assert ss["case"] == pytest.approx(22.0 + 50.0 * 0.06)

    def test_integration_converges_to_steady_state(self):
        net = two_lump_chain()
        target = net.steady_state({"cpu": 150.0}, ambient_c=22.0)
        for _ in range(6000):
            net.step(1.0, {"cpu": 150.0}, 22.0)
        assert net.temperature("cpu") == pytest.approx(target["cpu"], abs=0.01)
        assert net.temperature("case") == pytest.approx(target["case"], abs=0.01)

    def test_cpu_hotter_than_case_under_cpu_load(self):
        net = two_lump_chain()
        for _ in range(2000):
            net.step(1.0, {"cpu": 100.0}, 22.0)
        assert net.temperature("cpu") > net.temperature("case") > 22.0

    def test_retuning_edge_changes_steady_state(self):
        net = two_lump_chain()
        before = net.steady_state({"cpu": 100.0}, 22.0)["cpu"]
        net.set_edge_resistance("cpu", "case", 0.36)
        after = net.steady_state({"cpu": 100.0}, 22.0)["cpu"]
        assert after > before

    def test_retuning_ambient_resistance_changes_steady_state(self):
        net = two_lump_chain()
        before = net.steady_state({"cpu": 100.0}, 22.0)["cpu"]
        net.set_ambient_resistance("case", 0.12)
        after = net.steady_state({"cpu": 100.0}, 22.0)["cpu"]
        assert after == pytest.approx(before + 100.0 * 0.06)


class TestValidation:
    def test_duplicate_node_rejected(self):
        with pytest.raises(ConfigurationError):
            RcNetwork(nodes=[ThermalNode("a", 1.0), ThermalNode("a", 2.0)])

    def test_self_edge_rejected(self):
        net = RcNetwork(nodes=[ThermalNode("a", 1.0, ambient_resistance_k_per_w=1.0)])
        with pytest.raises(ConfigurationError):
            net.connect("a", "a", 1.0)

    def test_unknown_node_rejected(self):
        net = single_lump()
        with pytest.raises(SimulationError):
            net.temperature("nope")

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalNode("a", 0.0)

    def test_nonpositive_step_rejected(self):
        net = single_lump()
        with pytest.raises(SimulationError):
            net.step(0.0, {}, 20.0)

    def test_steady_state_without_ambient_path_rejected(self):
        net = RcNetwork(nodes=[ThermalNode("a", 1.0)])
        with pytest.raises(SimulationError):
            net.steady_state({"a": 1.0}, 20.0)

    def test_retune_missing_edge_rejected(self):
        net = two_lump_chain()
        net.add_node(ThermalNode("extra", 10.0))
        with pytest.raises(SimulationError):
            net.set_edge_resistance("cpu", "extra", 0.5)
