"""Parity tests: the vectorized fleet engine must match the per-server
reference path to floating-point round-off.

These are the contract behind ``DatacenterSimulation(use_fleet_engine=True)``
being the default: a 10-minute mixed-load run — constant, periodic, ramp,
and bursty (stateful, Python-fallback) tasks — including a mid-run
fan-count change and a live VM migration, must produce the same thermal
trajectories (≤ 1e-9), identical sensor readings, and identical telemetry
on both paths.
"""

import numpy as np
import pytest

from repro.config import SensorConfig, ThermalConfig
from repro.datacenter.cluster import Cluster
from repro.datacenter.events import FunctionEvent
from repro.datacenter.migration import migrate_vm
from repro.datacenter.resources import ResourceCapacity
from repro.datacenter.server import Server, ServerSpec
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.vm import Vm, VmSpec
from repro.datacenter.workload import BurstyTask, ConstantTask, PeriodicTask, RampTask
from repro.rng import RngFactory
from repro.thermal.fleet import FleetThermalEngine
from repro.thermal.server_thermal import ServerThermalModel

N_SERVERS = 8
DURATION_S = 600.0


def build_mixed_sim(use_fleet: bool, seed: int = 42) -> DatacenterSimulation:
    """An N-server cluster exercising every task family plus events."""
    factory = RngFactory(seed)
    cluster = Cluster("parity")
    for i in range(N_SERVERS):
        spec = ServerSpec(
            name=f"s{i}",
            capacity=ResourceCapacity(cpu_cores=16, ghz_per_core=2.4, memory_gb=64.0),
            fan_count=4,
            fan_speed=0.6 + 0.05 * (i % 4),
        )
        server = Server(spec)
        tasks_by_server = [
            (ConstantTask(level=0.7),),
            (PeriodicTask(mean=0.5, amplitude=0.2, period_s=240.0, phase_s=30.0 * i),),
            (RampTask(start_level=0.2, end_level=0.9, ramp_s=400.0),),
            (
                BurstyTask(rng=factory.stream(f"bursty/{i}")),
                ConstantTask(level=0.3),
            ),
        ]
        for j, tasks in enumerate(tasks_by_server):
            server.host_vm(
                Vm(VmSpec(name=f"vm-{i}-{j}", vcpus=2, memory_gb=4.0, tasks=tasks))
            )
        cluster.add_server(server)
    sim = DatacenterSimulation(
        cluster=cluster,
        rng=RngFactory(seed).fork("sim"),
        sensor_config=SensorConfig(sampling_period_s=5.0, noise_std_c=0.3),
        use_fleet_engine=use_fleet,
    )
    # Mid-run fan-count change on a hot server, and oversubscription via an
    # extra VM landing through live migration.
    sim.schedule(
        FunctionEvent(200.0, lambda s: s.cluster.server("s1").set_fan_count(8))
    )
    sim.schedule(
        FunctionEvent(350.0, lambda s: s.cluster.server("s2").set_fan_speed(1.0))
    )
    migrate_vm(sim, "vm-3-0", destination="s4", start_time_s=300.0)
    return sim


@pytest.fixture(scope="module")
def sim_pair():
    reference = build_mixed_sim(use_fleet=False)
    fleet = build_mixed_sim(use_fleet=True)
    trace_ref: dict[str, list] = {f"s{i}": [] for i in range(N_SERVERS)}
    trace_fleet: dict[str, list] = {f"s{i}": [] for i in range(N_SERVERS)}

    def tracer(store):
        def probe(sim, time_s):
            for server in sim.cluster.servers:
                store[server.name].append(
                    (server.thermal.cpu_temperature_c, server.thermal.case_temperature_c)
                )

        return probe

    reference.add_probe(tracer(trace_ref))
    fleet.add_probe(tracer(trace_fleet))
    reference.run(DURATION_S)
    fleet.run(DURATION_S)
    return reference, fleet, trace_ref, trace_fleet


class TestTrajectoryParity:
    def test_per_step_trajectories_match(self, sim_pair):
        _, _, trace_ref, trace_fleet = sim_pair
        for name in trace_ref:
            a = np.asarray(trace_ref[name])
            b = np.asarray(trace_fleet[name])
            assert a.shape == b.shape == (int(DURATION_S), 2)
            assert np.max(np.abs(a - b)) <= 1e-9, name

    def test_final_state_matches(self, sim_pair):
        reference, fleet, _, _ = sim_pair
        for ref_server, fleet_server in zip(
            reference.cluster.servers, fleet.cluster.servers
        ):
            assert fleet_server.thermal.cpu_temperature_c == pytest.approx(
                ref_server.thermal.cpu_temperature_c, abs=1e-9
            )
            assert fleet_server.thermal.time_s == pytest.approx(
                ref_server.thermal.time_s, abs=1e-9
            )

    def test_events_applied_identically(self, sim_pair):
        reference, fleet, _, _ = sim_pair
        assert fleet.cluster.server("s1").fans.count == 8
        assert fleet.cluster.server("s2").fans.speed == 1.0
        assert "vm-3-0" in fleet.cluster.server("s4").vms
        assert "vm-3-0" not in fleet.cluster.server("s3").vms
        assert reference.cluster.server("s1").fans.count == 8
        assert "vm-3-0" in reference.cluster.server("s4").vms


class TestTelemetryParity:
    def test_sensor_readings_identical(self, sim_pair):
        reference, fleet, _, _ = sim_pair
        for i in range(N_SERVERS):
            name = f"s{i}"
            ref_series = reference.telemetry.for_server(name).cpu_temperature
            fleet_series = fleet.telemetry.for_server(name).cpu_temperature
            assert ref_series.times == fleet_series.times
            assert ref_series.values == fleet_series.values

    def test_vmm_series_match(self, sim_pair):
        reference, fleet, _, _ = sim_pair
        for i in range(N_SERVERS):
            name = f"s{i}"
            ref = reference.telemetry.for_server(name)
            flt = fleet.telemetry.for_server(name)
            assert flt.utilization.times == ref.utilization.times
            np.testing.assert_allclose(
                flt.utilization.values, ref.utilization.values, atol=1e-12
            )
            assert flt.vm_count.values == ref.vm_count.values
            assert flt.fan_count.values == ref.fan_count.values
            assert flt.fan_speed.values == ref.fan_speed.values

    def test_environment_series_match(self, sim_pair):
        reference, fleet, _, _ = sim_pair
        assert (
            fleet.telemetry.environment.values == reference.telemetry.environment.values
        )


class TestCustomPlantFallback:
    class TracingPlant(ServerThermalModel):
        """A custom plant subclass — must be excluded from the engine."""

        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.step_calls = 0

        def step(self, dt_s, utilization, ambient_c):
            self.step_calls += 1
            super().step(dt_s, utilization, ambient_c)

    def _with_custom_plant(self, use_fleet: bool) -> DatacenterSimulation:
        sim = build_mixed_sim(use_fleet=use_fleet, seed=7)
        server = sim.cluster.server("s5")
        custom = self.TracingPlant(
            power_model=server.spec.build_power_model(),
            fans=server.fans,
            config=ThermalConfig(),
        )
        custom.set_temperatures(
            server.thermal.cpu_temperature_c, server.thermal.case_temperature_c
        )
        server.thermal = custom
        return sim

    def test_partition_excludes_custom_plants(self):
        sim = self._with_custom_plant(use_fleet=True)
        fast, slow = FleetThermalEngine.partition(sim.cluster.servers)
        assert [s.name for s in slow] == ["s5"]
        assert len(fast) == N_SERVERS - 1

    def test_custom_plant_stepped_per_server_and_matches_reference(self):
        fleet = self._with_custom_plant(use_fleet=True)
        reference = self._with_custom_plant(use_fleet=False)
        fleet.run(120.0)
        reference.run(120.0)
        assert fleet.cluster.server("s5").thermal.step_calls == 120
        for ref_server, fleet_server in zip(
            reference.cluster.servers, fleet.cluster.servers
        ):
            assert fleet_server.thermal.cpu_temperature_c == pytest.approx(
                ref_server.thermal.cpu_temperature_c, abs=1e-9
            )
        ref = reference.telemetry.for_server("s5")
        flt = fleet.telemetry.for_server("s5")
        assert flt.cpu_temperature.values == ref.cpu_temperature.values
        assert flt.utilization.times == ref.utilization.times


class TestEngineUnit:
    def test_rejects_custom_plant(self):
        sim = build_mixed_sim(use_fleet=True, seed=9)
        server = sim.cluster.server("s0")

        class Odd(ServerThermalModel):
            pass

        server.thermal = Odd(
            power_model=server.spec.build_power_model(), fans=server.fans
        )
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            FleetThermalEngine([server])

    def test_single_step_matches_scalar_plant(self):
        sim = build_mixed_sim(use_fleet=True, seed=11)
        servers = sim.cluster.servers
        engine = FleetThermalEngine(servers)
        expected = []
        for server in servers:
            server.thermal.step(1.0, 0.63, 21.5)
            expected.append(server.thermal.cpu_temperature_c)
        engine.step(1.0, np.full(len(servers), 0.63), 21.5)
        np.testing.assert_allclose(engine.cpu_temperatures(), expected, atol=1e-12)

    def test_writeback_restores_plants(self):
        sim = build_mixed_sim(use_fleet=True, seed=12)
        servers = sim.cluster.servers
        engine = FleetThermalEngine(servers)
        engine.step(1.0, np.full(len(servers), 0.8), 22.0)
        engine.step(1.0, np.full(len(servers), 0.8), 22.0)
        engine.writeback()
        for i, server in enumerate(servers):
            assert server.thermal.cpu_temperature_c == engine.cpu_temperatures()[i]


class TestProbeMutationDetection:
    """Read-only probes keep the fleet fast path; mutating probes must be
    detected and repacked (fleet.dirty fingerprint)."""

    def _run_with_probe(self, use_fleet: bool):
        sim = build_mixed_sim(use_fleet=use_fleet, seed=21)

        def controller_probe(s, t):
            # A closed-loop policy mutating through public APIs.
            if t == 100.0:
                s.cluster.server("s0").set_fan_speed(1.0)
            if t == 150.0:
                s.cluster.server("s1").thermal.set_temperatures(80.0, 50.0)

        sim.add_probe(controller_probe)
        sim.run(300.0)
        return sim

    def test_probe_mutations_match_reference(self):
        fleet = self._run_with_probe(True)
        reference = self._run_with_probe(False)
        for ref_server, fleet_server in zip(
            reference.cluster.servers, fleet.cluster.servers
        ):
            assert fleet_server.thermal.cpu_temperature_c == pytest.approx(
                ref_server.thermal.cpu_temperature_c, abs=1e-9
            )
        assert fleet.cluster.server("s0").fans.speed == 1.0

    def test_fan_speed_telemetry_reflects_probe_change(self):
        fleet = self._run_with_probe(True)
        speeds = fleet.telemetry.for_server("s0").fan_speed
        assert speeds.value_at(90.0) < 1.0
        assert speeds.value_at(150.0) == 1.0
