"""Unit tests for deterministic RNG streams."""

import pytest

from repro.rng import RngFactory, RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(43, "a")

    def test_process_stable_reference_value(self):
        # Pinned value: guards against accidental hash-salt dependence.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert isinstance(derive_seed(0, "x"), int)


class TestRngStream:
    def test_same_stream_same_sequence(self):
        a = [RngStream(7, "s").uniform(0, 1) for _ in range(1)]
        b = [RngStream(7, "s").uniform(0, 1) for _ in range(1)]
        assert a == b

    def test_samplers_in_expected_ranges(self):
        stream = RngStream(1, "range")
        for _ in range(100):
            assert 2.0 <= stream.uniform(2.0, 3.0) <= 3.0
            assert 1 <= stream.randint(1, 6) <= 6
            assert stream.expovariate(2.0) >= 0.0
            assert 0.0 <= stream.random() < 1.0

    def test_choice_and_sample(self):
        stream = RngStream(2, "pick")
        items = ["a", "b", "c", "d"]
        assert stream.choice(items) in items
        subset = stream.sample(items, 2)
        assert len(subset) == 2
        assert set(subset) <= set(items)

    def test_shuffle_in_place_is_permutation(self):
        stream = RngStream(3, "mix")
        items = list(range(10))
        stream.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_gauss_moments(self):
        stream = RngStream(4, "g")
        values = [stream.gauss(5.0, 2.0) for _ in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert mean == pytest.approx(5.0, abs=0.15)
        assert var == pytest.approx(4.0, rel=0.15)


class TestRngFactory:
    def test_stream_cached(self):
        factory = RngFactory(5)
        assert factory.stream("x") is factory.stream("x")

    def test_fork_produces_independent_space(self):
        parent = RngFactory(5)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RngFactory(5).fork("c").stream("x").random()
        b = RngFactory(5).fork("c").stream("x").random()
        assert a == b

    def test_stream_names_listed(self):
        factory = RngFactory(6)
        factory.stream("b")
        factory.stream("a")
        assert list(factory.stream_names()) == ["a", "b"]
