"""Bitwise parity of the refactored grid search against the seed loop.

The acceptance contract of the training refactor: at default settings
(no warm start, no pool), the work-queue grid search over shared Gram
caches and the batched fold solver must return the **same bits** as the
historical implementation — every trial MSE, the selected
(C, γ, ε, CV-MSE), and the refit predictor's coefficients. The seed
implementation lives in :mod:`tests.training.seed_reference` (shared
with the throughput benchmark so both compare the same baseline).
"""

import numpy as np
import pytest

from repro.core.pipeline import train_stable_predictor
from repro.core.stable import StableTemperaturePredictor
from repro.rng import RngFactory, RngStream
from repro.svm.grid import (
    DEFAULT_C_GRID,
    DEFAULT_EPSILON_GRID,
    DEFAULT_GAMMA_GRID,
    grid_search_svr,
)
from repro.svm.scaling import MinMaxScaler
from tests.training.seed_reference import seed_grid_search


@pytest.fixture(scope="module")
def scaled_features(experiment_records):
    """The exact matrix/targets the training pipeline feeds the search."""
    from repro.core.features import FeatureExtractor

    extractor = FeatureExtractor()
    x = extractor.matrix(experiment_records)
    y = extractor.targets(experiment_records)
    return MinMaxScaler().fit_transform(x), y


class TestGridSearchParity:
    def test_default_grids_bit_identical(self, scaled_features):
        """The full default 4x4x2 grid with 10-fold CV, default settings."""
        x, y = scaled_features
        best, best_mse, trials = seed_grid_search(
            x, y, DEFAULT_C_GRID, DEFAULT_GAMMA_GRID, DEFAULT_EPSILON_GRID
        )
        result = grid_search_svr(x, y)
        assert (result.best_c, result.best_gamma, result.best_epsilon) == best
        assert result.best_cv_mse == best_mse  # bitwise
        assert [t.astuple() for t in result.trials] == trials  # bitwise

    def test_per_point_rng_folds_bit_identical(self, scaled_features):
        """The historical one-shuffle-per-point semantics, exactly."""
        x, y = scaled_features
        grids = dict(
            c_grid=(8.0, 64.0), gamma_grid=(0.03125, 0.5), epsilon_grid=(0.125,),
        )
        best, best_mse, trials = seed_grid_search(
            x, y, n_splits=5, rng=RngStream(13, "cv"), **grids
        )
        result = grid_search_svr(
            x, y, n_splits=5, rng=RngStream(13, "cv"), **grids
        )
        assert (result.best_c, result.best_gamma, result.best_epsilon) == best
        assert result.best_cv_mse == best_mse
        assert [t.astuple() for t in result.trials] == trials


class TestRefitParity:
    def test_refit_predictor_bit_identical(self, experiment_records):
        """train_stable_predictor: same winner, same fitted coefficients."""
        records = experiment_records
        grids = dict(
            c_grid=(8.0, 64.0, 512.0),
            gamma_grid=(0.03125, 0.125),
            epsilon_grid=(0.125,),
        )
        # Seed path: seed search over the scaled features, then the
        # unchanged StableTemperaturePredictor refit.
        from repro.core.features import FeatureExtractor

        extractor = FeatureExtractor()
        x = extractor.matrix(records)
        y = extractor.targets(records)
        x_scaled = MinMaxScaler().fit_transform(x)
        best, best_mse, _ = seed_grid_search(
            x_scaled, y, n_splits=5, rng=RngFactory(7).stream("cv"), **grids
        )
        seed_predictor = StableTemperaturePredictor(
            c=best[0], gamma=best[1], epsilon=best[2]
        ).fit(records)

        report = train_stable_predictor(
            records, n_splits=5, rng=RngFactory(7).stream("cv"), **grids
        )
        assert (
            report.grid.best_c, report.grid.best_gamma, report.grid.best_epsilon
        ) == best
        assert report.grid.best_cv_mse == best_mse
        new_svr = report.predictor.svr
        old_svr = seed_predictor.svr
        assert np.array_equal(new_svr._support_x, old_svr._support_x)
        assert np.array_equal(new_svr._support_beta, old_svr._support_beta)
        assert new_svr.bias == old_svr.bias
        predictions_new = report.predictor.predict_many(records)
        predictions_old = seed_predictor.predict_many(records)
        assert np.array_equal(predictions_new, predictions_old)
