"""Integration: fleet-train output drives the fleet prediction service.

The acceptance path of the training subsystem: a trained per-class
registry (``fleet-train``) must be consumable by the online prediction
service (``fleet-predict``'s serving loop) end to end — per-class model
resolution, batched ψ_stable queries, forecasts landing in telemetry.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.scenarios import (
    build_fleet_simulation,
    class_balanced_fleet_scenario,
)
from repro.serving import FleetPredictionProbe, PredictionFleet, predicted_vs_actual
from repro.training import (
    FleetTrainingConfig,
    profile_fleet,
    server_class_key,
    train_fleet_registry,
)


class TestRegistryServesFleet:
    @pytest.fixture(scope="class")
    def scenario(self):
        return class_balanced_fleet_scenario(
            n_classes=3, servers_per_class=3, seed=43_000, duration_s=700.0
        )

    @pytest.fixture(scope="class")
    def report(self, scenario):
        return train_fleet_registry(
            profile_fleet(scenario),
            FleetTrainingConfig(
                n_splits=3, c_grid=(8.0, 64.0), gamma_grid=(0.125,),
                epsilon_grid=(0.125,), min_class_records=3,
            ),
        )

    def test_probe_serves_every_server_through_its_class_model(
        self, scenario, report
    ):
        sim = build_fleet_simulation(scenario)
        fleet = PredictionFleet(report.registry)
        probe = FleetPredictionProbe(
            fleet, key_fn=lambda server: server_class_key(server.spec)
        )
        probe.attach(sim)
        sim.run(400.0)

        assert fleet.n_servers == scenario.n_servers
        # Every tracked server resolved its own hardware class entry.
        assert sorted(set(fleet._keys)) == sorted(
            {server_class_key(spec) for spec in scenario.server_specs}
        )
        scored = 0
        for name in fleet.names:
            _, predicted, actual = predicted_vs_actual(sim.telemetry, name)
            if predicted.size:
                scored += 1
                assert np.isfinite(predicted).all()
                assert float(np.mean((predicted - actual) ** 2)) < 200.0
        assert scored == scenario.n_servers

    def test_forecasts_match_direct_entry_predictions(self, scenario, report):
        """The probe's seeded ψ_stable equals a direct registry query."""
        sim = build_fleet_simulation(scenario)
        fleet = PredictionFleet(report.registry)
        probe = FleetPredictionProbe(
            fleet, key_fn=lambda server: server_class_key(server.spec)
        )
        probe.attach(sim)
        sim.run(30.0)
        from repro.core.monitor import record_for_server

        server = sim.cluster.servers[0]
        entry = report.registry.resolve(server_class_key(server.spec))
        record = record_for_server(
            server, sim.environment.temperature(0.0)
        )
        expected = entry.predict_records([record])[0]
        index = fleet.indices([server.name])[0]
        assert fleet._psi[index] == expected  # bitwise: same batched path


class TestFleetTrainCli:
    def test_fleet_train_end_to_end(self, capsys):
        code = main(
            ["fleet-train", "--quick", "--classes", "2",
             "--servers-per-class", "3", "--duration", "700",
             "--serve-duration", "300", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "server classes" in out
        assert "best C=" in out
        assert "servers tracked      6" in out
        assert "fleet MSE" in out

    def test_fleet_train_can_skip_serving(self, capsys):
        code = main(
            ["fleet-train", "--quick", "--classes", "2",
             "--servers-per-class", "2", "--duration", "700",
             "--serve-duration", "0", "--seed", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "server classes" in out
        assert "servers tracked" not in out
