"""Verbatim replicas of the seed training implementation.

The parity tests (``tests/training/test_grid_parity.py``) and the
throughput benchmark (``benchmarks/test_training_throughput.py``) both
compare against the pre-refactor training loop. Keeping one copy here
ensures they measure the same baseline: the historical ``cross_val_mse``
(one estimator clone and one kernel evaluation per fold, one KFold draw
per ``cross_val_mse`` call when an rng is supplied) and the historical
triple-nested ``grid_search_svr`` with its sequential tie-breaking scan.
Do not "improve" these — their job is to stay byte-for-byte faithful to
the seed behaviour.
"""

import numpy as np

from repro.svm.cv import KFold
from repro.svm.kernels import RbfKernel
from repro.svm.metrics import mean_squared_error
from repro.svm.svr import EpsilonSVR


def seed_cross_val_mse(model, x, y, n_splits=10, rng=None):
    """Verbatim copy of the seed ``cross_val_mse``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    splitter = KFold(n_splits=n_splits, rng=rng)
    scores = []
    for train_idx, val_idx in splitter.split(x.shape[0]):
        fold_model = model.clone()
        fold_model.fit(x[train_idx], y[train_idx])
        predictions = fold_model.predict(x[val_idx])
        scores.append(
            mean_squared_error(
                y[val_idx].tolist(), np.atleast_1d(predictions).tolist()
            )
        )
    return sum(scores) / len(scores)


def seed_grid_search(
    x, y, c_grid, gamma_grid, epsilon_grid, n_splits=10, rng=None,
    max_iter=50_000,
):
    """Verbatim copy of the seed ``grid_search_svr`` loop.

    Returns ``(best, best_mse, trials)`` with ``best`` the winning
    (c, gamma, epsilon) triple and ``trials`` the legacy tuple rows.
    """
    trials = []
    best = None
    best_mse = float("inf")
    for c in c_grid:
        for gamma in gamma_grid:
            for epsilon in epsilon_grid:
                model = EpsilonSVR(
                    kernel=RbfKernel(gamma=gamma),
                    c=c,
                    epsilon=epsilon,
                    max_iter=max_iter,
                    on_no_convergence="ignore",
                )
                mse = seed_cross_val_mse(model, x, y, n_splits=n_splits, rng=rng)
                trials.append((c, gamma, epsilon, mse))
                better = mse < best_mse - 1e-12
                tie = abs(mse - best_mse) <= 1e-12
                prefer = best is None or better
                if tie and best is not None and (c, -gamma) < (best[0], -best[1]):
                    prefer = True
                if prefer:
                    best = (c, gamma, epsilon)
                    best_mse = mse
    return best, best_mse, trials
