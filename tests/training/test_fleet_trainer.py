"""Unit tests for the per-server-class fleet trainer."""

import numpy as np
import pytest

from repro.core.records import ExperimentRecord, VmRecord
from repro.datacenter.resources import ResourceCapacity
from repro.datacenter.server import ServerSpec
from repro.errors import DatasetError
from repro.training.fleet_trainer import (
    FleetProfile,
    FleetTrainingConfig,
    _search_subset,
    profile_fleet,
    server_class_key,
    train_fleet_registry,
)

#: Distinct hardware classes for synthetic profiles. The first four are
#: the historical fixtures; the commodity grid continues behind them so
#: benchmarks can ask for 16+ classes without key collisions.
_BASE_SPECS = [
    (8, 2.0, 64.0, 2),
    (16, 2.4, 128.0, 4),
    (24, 2.6, 128.0, 6),
    (32, 3.0, 256.0, 8),
]
CLASS_SPECS = _BASE_SPECS + [
    combo
    for combo in (
        (cores, ghz, memory, fans)
        for cores, ghz in zip((8, 16, 24, 32), (2.0, 2.4, 2.6, 3.0))
        for memory in (64.0, 128.0, 256.0)
        for fans in (2, 4, 6, 8)
    )
    if combo not in _BASE_SPECS
]

TINY_CONFIG = FleetTrainingConfig(
    n_splits=3,
    c_grid=(8.0, 64.0),
    gamma_grid=(0.125,),
    epsilon_grid=(0.125,),
    min_class_records=3,
)


def synthetic_profile(records_per_class=6, n_classes=4, seed=0):
    """A labelled fleet profile without running a simulation."""
    rng = np.random.default_rng(seed)
    names, keys, records = [], [], []
    for class_index in range(n_classes):
        cores, ghz, memory, fans = CLASS_SPECS[class_index % len(CLASS_SPECS)]
        spec = ServerSpec(
            name=f"probe-{class_index}",
            capacity=ResourceCapacity(
                cpu_cores=cores, ghz_per_core=ghz, memory_gb=memory
            ),
            fan_count=fans,
            fan_speed=0.7,
        )
        key = server_class_key(spec)
        for server_index in range(records_per_class):
            n_vms = int(rng.integers(2, 6))
            util = float(rng.uniform(0.3, 0.9))
            vms = tuple(
                VmRecord(
                    vcpus=2, memory_gb=4.0, task_kinds=("constant",),
                    nominal_utilization=util,
                )
                for _ in range(n_vms)
            )
            load = n_vms * 2 * util / cores
            psi = 35.0 + 30.0 * min(load, 1.0) - 1.5 * fans + float(
                rng.normal(0.0, 0.3)
            )
            records.append(
                ExperimentRecord(
                    theta_cpu_cores=cores,
                    theta_cpu_ghz=cores * ghz,
                    theta_memory_gb=memory,
                    theta_fan_count=fans,
                    theta_fan_speed=0.7,
                    delta_env_c=22.0,
                    vms=vms,
                    psi_stable_c=psi,
                )
            )
            names.append(f"server-{class_index}-{server_index}")
            keys.append(key)
    return FleetProfile(
        names=tuple(names), class_keys=tuple(keys), records=tuple(records)
    )


class TestServerClassKey:
    def test_distinct_hardware_distinct_keys(self):
        specs = [
            ServerSpec(
                name=f"s{i}",
                capacity=ResourceCapacity(
                    cpu_cores=cores, ghz_per_core=ghz, memory_gb=memory
                ),
                fan_count=fans,
                fan_speed=0.5 + 0.01 * i,
            )
            for i, (cores, ghz, memory, fans) in enumerate(CLASS_SPECS)
        ]
        assert len({server_class_key(spec) for spec in specs}) == len(specs)

    def test_fan_speed_not_a_class_boundary(self):
        base = dict(
            capacity=ResourceCapacity(cpu_cores=16, ghz_per_core=2.4, memory_gb=64.0),
            fan_count=4,
        )
        a = ServerSpec(name="a", fan_speed=0.4, **base)
        b = ServerSpec(name="b", fan_speed=0.9, **base)
        assert server_class_key(a) == server_class_key(b)


class TestTrainFleetRegistry:
    def test_registers_default_and_all_classes(self):
        profile = synthetic_profile()
        report = train_fleet_registry(profile, TINY_CONFIG)
        assert "default" in report.registry
        for key in set(profile.class_keys):
            assert key in report.registry
        assert report.n_class_models == 4
        assert report.n_records == profile.n_servers

    def test_shared_scaler_and_extractor(self):
        profile = synthetic_profile()
        report = train_fleet_registry(profile, TINY_CONFIG)
        default = report.registry.resolve("default")
        for key in set(profile.class_keys):
            entry = report.registry.resolve(key)
            assert entry.scaler is default.scaler
            assert entry.extractor is default.extractor

    def test_small_classes_alias_to_default(self):
        profile = synthetic_profile(records_per_class=2)
        report = train_fleet_registry(profile, TINY_CONFIG)
        default = report.registry.resolve("default")
        for class_report in report.classes:
            assert class_report.aliased
            assert class_report.train_mse is None
            assert report.registry.resolve(class_report.key) is default

    def test_class_models_fit_their_classes(self):
        profile = synthetic_profile(records_per_class=10)
        report = train_fleet_registry(profile, TINY_CONFIG)
        groups = profile.classes()
        for class_report in report.classes:
            assert not class_report.aliased
            entry = report.registry.resolve(class_report.key)
            records = [profile.records[i] for i in groups[class_report.key]]
            predicted = entry.predict_records(records)
            actual = np.array([r.psi_stable_c for r in records])
            assert float(np.mean((predicted - actual) ** 2)) < 25.0
            assert class_report.train_mse == pytest.approx(
                float(np.mean((predicted - actual) ** 2))
            )

    def test_unknown_class_falls_back_to_default(self):
        report = train_fleet_registry(synthetic_profile(), TINY_CONFIG)
        entry = report.registry.resolve("999c/9ghz/9gb/9fan")
        assert entry is report.registry.resolve("default")

    def test_shared_hyperparameters_across_classes(self):
        report = train_fleet_registry(synthetic_profile(), TINY_CONFIG)
        default = report.registry.resolve("default")
        for class_report in report.classes:
            model = report.registry.resolve(class_report.key).model
            assert model.c == default.model.c == report.grid.best_c
            assert model.kernel.gamma == report.grid.best_gamma

    def test_too_few_records_raises(self):
        profile = synthetic_profile(records_per_class=1, n_classes=2)
        with pytest.raises(DatasetError):
            train_fleet_registry(profile, TINY_CONFIG)

    def test_summary_mentions_classes_and_search(self):
        report = train_fleet_registry(synthetic_profile(), TINY_CONFIG)
        summary = report.summary()
        assert "server classes" in summary
        assert "best C=" in summary
        for class_report in report.classes:
            assert class_report.key in summary


class TestSearchSubset:
    def test_no_cap_keeps_everything(self):
        profile = synthetic_profile(records_per_class=3)
        subset = _search_subset(profile, cap=100)
        assert subset.tolist() == list(range(profile.n_servers))

    def test_capped_subset_is_class_stratified(self):
        profile = synthetic_profile(records_per_class=10)
        subset = _search_subset(profile, cap=8)
        assert subset.shape[0] == 8
        keys = [profile.class_keys[i] for i in subset]
        counts = {key: keys.count(key) for key in set(keys)}
        assert set(counts.values()) == {2}  # 4 classes x 2 each

    def test_deterministic(self):
        profile = synthetic_profile(records_per_class=10)
        a = _search_subset(profile, cap=11)
        b = _search_subset(profile, cap=11)
        assert np.array_equal(a, b)


class TestProfileFleet:
    @pytest.fixture(scope="class")
    def small_scenario(self):
        from repro.experiments.scenarios import class_balanced_fleet_scenario

        return class_balanced_fleet_scenario(
            n_classes=2, servers_per_class=3, seed=41_000, duration_s=700.0
        )

    def test_one_record_per_server_with_class_keys(self, small_scenario):
        profile = profile_fleet(small_scenario)
        assert profile.n_servers == 6
        assert len(set(profile.class_keys)) == 2
        for record, spec in zip(profile.records, small_scenario.server_specs):
            assert record.psi_stable_c is not None
            assert record.theta_cpu_cores == spec.capacity.cpu_cores
            assert len(record.vms) == len(
                small_scenario.vm_specs[
                    small_scenario.server_specs.index(spec)
                ]
            )

    def test_rejects_duration_inside_warmup(self, small_scenario):
        with pytest.raises(DatasetError):
            profile_fleet(small_scenario, t_break_s=800.0)

    def test_end_to_end_trains_and_serves(self, small_scenario):
        """profile → train → registry resolves every live server class."""
        from repro.datacenter.server import Server

        profile = profile_fleet(small_scenario)
        config = FleetTrainingConfig(
            n_splits=3, c_grid=(64.0,), gamma_grid=(0.125,),
            epsilon_grid=(0.125,), min_class_records=2,
        )
        report = train_fleet_registry(profile, config)
        for spec in small_scenario.server_specs:
            key = server_class_key(Server(spec).spec)
            entry = report.registry.resolve(key)
            predicted = entry.predict_records([profile.records[0]])
            assert np.isfinite(predicted).all()
