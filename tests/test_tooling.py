"""The repo's CI lint tools run clean on the tree itself."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCheckTestBasenames:
    def test_tree_has_no_duplicate_test_basenames(self):
        """The pytest no-__init__ collision trap, enforced locally too."""
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_test_basenames.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "all basenames unique" in result.stdout

    def test_lint_detects_a_planted_duplicate(self, tmp_path):
        """The lint actually fires: a fake tree with a colliding basename."""
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_test_basenames import collect_test_files
        finally:
            sys.path.pop(0)
        (tmp_path / "tests" / "a").mkdir(parents=True)
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "tests" / "a" / "test_x.py").write_text("")
        (tmp_path / "benchmarks" / "test_x.py").write_text("")
        by_basename = collect_test_files(tmp_path)
        assert len(by_basename["test_x.py"]) == 2
