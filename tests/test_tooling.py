"""The repo's CI lint tools run clean on the tree itself.

The heavy lifting moved into ``tools/reprolint`` (see
``tests/tooling/test_reprolint.py`` for per-rule fixture coverage);
this module pins the tree-level contracts: the legacy shims still
work, and the ``fleet-lint`` CLI entry point reaches the linter.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCheckTestBasenames:
    def test_tree_has_no_duplicate_test_basenames(self):
        """The pytest no-__init__ collision trap, enforced locally too."""
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_test_basenames.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "all basenames unique" in result.stdout

    def test_lint_detects_a_planted_duplicate(self, tmp_path):
        """The lint actually fires: a fake tree with a colliding basename."""
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_test_basenames import collect_test_files
        finally:
            sys.path.pop(0)
        (tmp_path / "tests" / "a").mkdir(parents=True)
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "tests" / "a" / "test_x.py").write_text("")
        (tmp_path / "benchmarks" / "test_x.py").write_text("")
        by_basename = collect_test_files(tmp_path)
        assert len(by_basename["test_x.py"]) == 2

    def test_r101_rule_reports_the_planted_duplicate(self, tmp_path):
        """The reprolint rule behind the shim fires on the same tree."""
        sys.path.insert(0, str(REPO_ROOT))
        try:
            from tools.reprolint.engine import ProjectContext
            from tools.reprolint.rules.basenames import TestBasenameRule
        finally:
            sys.path.pop(0)
        (tmp_path / "tests" / "a").mkdir(parents=True)
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "tests" / "a" / "test_x.py").write_text("")
        (tmp_path / "benchmarks" / "test_x.py").write_text("")
        findings = TestBasenameRule().check_project(ProjectContext(root=tmp_path))
        assert len(findings) == 1
        assert "test_x.py" in findings[0].message


class TestSmokeDocsShim:
    def test_shim_reexports_the_reprolint_implementation(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import smoke_docs
        finally:
            sys.path.pop(0)
        from tools.reprolint import docs_smoke

        assert smoke_docs.main is docs_smoke.main
        assert smoke_docs.run_readme_blocks is docs_smoke.run_readme_blocks
        assert smoke_docs.run_examples is docs_smoke.run_examples


class TestFleetLintEntryPoint:
    def test_cli_subcommand_reaches_the_linter(self):
        """`python -m repro.cli fleet-lint` forwards to tools.reprolint."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet-lint",
             "--select", "R101", "--no-baseline", "tools"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s)" in result.stdout
