"""Unit tests for the sliding-window retrain planner."""

import numpy as np
import pytest

from repro.datacenter.vm import Vm, VmSpec
from repro.datacenter.workload import ConstantTask
from repro.errors import ConfigurationError
from repro.experiments.scenarios import FleetScenario, build_fleet_simulation
from repro.lifecycle import RetrainPlanner, RetrainPlannerConfig
from repro.thermal.environment import ConstantEnvironment
from tests.conftest import make_server_spec


class FakeFleet:
    def __init__(self, names, keys, retarget_log=()):
        self.names = list(names)
        self.model_keys = list(keys)
        self.retarget_log = list(retarget_log)


def small_sim(n=4, duration_s=900.0):
    specs = tuple(make_server_spec(name=f"s{i}") for i in range(n))
    placements = tuple(
        (
            VmSpec(
                name=f"vm-{i}",
                vcpus=2,
                memory_gb=4.0,
                tasks=(ConstantTask(level=0.4 + 0.1 * i),),
            ),
        )
        for i in range(n)
    )
    scenario = FleetScenario(
        name="planner-fixture",
        server_specs=specs,
        vm_specs=placements,
        environment=ConstantEnvironment(22.0),
        duration_s=duration_s,
        seed=5,
    )
    sim = build_fleet_simulation(scenario)
    sim.run(duration_s)
    return sim


@pytest.fixture(scope="module")
def sim():
    return small_sim()


class TestPlanning:
    def test_harvests_one_labelled_record_per_server(self, sim):
        planner = RetrainPlanner(
            RetrainPlannerConfig(window_s=600.0, min_class_records=2)
        )
        fleet = FakeFleet([f"s{i}" for i in range(4)], ["k"] * 4)
        plan = planner.plan(900.0, ["k"], sim, fleet)
        assert plan.keys == ["k"]
        assert plan.skipped == ()
        record_set = plan.classes[0]
        assert record_set.server_names == ("s0", "s1", "s2", "s3")
        assert plan.n_records == 4
        for name, record in zip(record_set.server_names, record_set.records):
            # Label is the Eq. (1) window mean of the sampled series.
            series = sim.telemetry.for_server(name).cpu_temperature
            expected = series.window(300.0, 900.0 + 1e-9).mean()
            assert record.psi_stable_c == expected
            assert record.delta_env_c == pytest.approx(22.0)
            assert record.n_vms == 1
            assert record.metadata["retrain_window_s"] == 600.0

    def test_partial_window_refuses_to_plan(self, sim):
        planner = RetrainPlanner(RetrainPlannerConfig(window_s=1800.0))
        fleet = FakeFleet(["s0"], ["k"])
        plan = planner.plan(900.0, ["k"], sim, fleet)
        assert plan.classes == ()
        assert plan.skipped[0][0] == "k"
        assert "window not yet full" in plan.skipped[0][1]

    def test_untracked_class_skipped(self, sim):
        planner = RetrainPlanner(RetrainPlannerConfig(window_s=600.0))
        fleet = FakeFleet(["s0"], ["k"])
        plan = planner.plan(900.0, ["other"], sim, fleet)
        assert plan.classes == ()
        assert plan.skipped == (("other", "no tracked servers"),)

    def test_min_class_records_skips_thin_classes(self, sim):
        planner = RetrainPlanner(
            RetrainPlannerConfig(window_s=600.0, min_class_records=5)
        )
        fleet = FakeFleet([f"s{i}" for i in range(4)], ["k"] * 4)
        plan = planner.plan(900.0, ["k"], sim, fleet)
        assert plan.classes == ()
        assert "4 clean records" in plan.skipped[0][1]

    def test_vm_churn_inside_window_disqualifies_server(self):
        sim = small_sim(n=3, duration_s=600.0)
        sim.cluster.server("s1").host_vm(
            Vm(
                VmSpec(
                    name="late-arrival",
                    vcpus=1,
                    memory_gb=2.0,
                    tasks=(ConstantTask(level=0.5),),
                )
            ),
            time_s=600.0,
        )
        sim.run(900.0)
        planner = RetrainPlanner(
            RetrainPlannerConfig(window_s=600.0, min_class_records=2)
        )
        fleet = FakeFleet(["s0", "s1", "s2"], ["k"] * 3)
        plan = planner.plan(900.0, ["k"], sim, fleet)
        assert plan.classes[0].server_names == ("s0", "s2")
        # With the churn guard off, s1 contributes (a mislabelled) record.
        loose = RetrainPlanner(
            RetrainPlannerConfig(
                window_s=600.0, min_class_records=2, require_stable_vm_set=False
            )
        )
        plan = loose.plan(900.0, ["k"], sim, fleet)
        assert "s1" in plan.classes[0].server_names

    def test_retarget_inside_window_disqualifies_server(self, sim):
        """Offsetting add+remove churn keeps the VM *count* flat but
        still retargets the curve — the retarget log must catch it."""
        planner = RetrainPlanner(
            RetrainPlannerConfig(window_s=600.0, min_class_records=2)
        )
        fleet = FakeFleet(
            [f"s{i}" for i in range(4)],
            ["k"] * 4,
            retarget_log=[
                ("s2", 700.0, 50.0, 55.0),   # inside [300, 900]
                ("s3", 200.0, 48.0, 52.0),   # before the window: fine
            ],
        )
        plan = planner.plan(900.0, ["k"], sim, fleet)
        assert plan.classes[0].server_names == ("s0", "s1", "s3")

    def test_record_uses_current_vm_set(self):
        sim = small_sim(n=2, duration_s=1200.0)
        planner = RetrainPlanner(
            RetrainPlannerConfig(
                window_s=600.0, min_class_records=2, require_stable_vm_set=False
            )
        )
        fleet = FakeFleet(["s0", "s1"], ["k"] * 2)
        plan = planner.plan(1200.0, ["k"], sim, fleet)
        for record in plan.classes[0].records:
            assert record.n_vms == 1
            assert record.theta_cpu_cores == 16


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_s": 0.0},
            {"min_samples": 0},
            {"min_class_records": 1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetrainPlannerConfig(**kwargs)
