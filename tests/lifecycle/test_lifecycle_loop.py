"""Integration: drift → retrain → hot-swap against the model-drift scenario.

The PR's headline acceptance at test scale: on a fleet whose training
regime goes away mid-run (seasonal ambient ramp + VM-flavor shift), the
drift-aware lifecycle detects γ saturation, retrains every class from
live telemetry windows, hot-swaps the new versions — and ends the run
with strictly lower windowed forecast MAE than the frozen-model
baseline, with no more sustained hotspots. Both arms run without a
mitigation policy, so their physical trajectories are identical and
the comparison isolates pure forecast quality.
"""

import numpy as np
import pytest

from repro.control import run_closed_loop
from repro.experiments.scenarios import (
    class_balanced_fleet_scenario,
    model_drift_scenario,
)
from repro.lifecycle import ModelLifecycle
from repro.training import (
    FleetTrainingConfig,
    profile_fleet,
    server_class_key,
    train_fleet_registry,
)

SEED = 92_000
N_CLASSES = 3
PER_CLASS = 6


def key_fn(server):
    return server_class_key(server.spec)


def train_registry():
    scenario = class_balanced_fleet_scenario(
        n_classes=N_CLASSES,
        servers_per_class=PER_CLASS,
        seed=SEED,
        duration_s=3600.0,
    )
    config = FleetTrainingConfig(
        n_splits=3,
        c_grid=(8.0, 64.0),
        gamma_grid=(0.03125, 0.125),
        epsilon_grid=(0.125,),
        min_class_records=3,
    )
    return train_fleet_registry(profile_fleet(scenario), config).registry


@pytest.fixture(scope="module")
def drift_runs():
    """One frozen and one lifecycle-managed run of the same drift."""
    scenario = model_drift_scenario(
        n_classes=N_CLASSES, servers_per_class=PER_CLASS, seed=SEED,
        duration_s=7200.0,
    )
    frozen = run_closed_loop(
        scenario, train_registry(), policy=None, key_fn=key_fn
    )
    live_registry = train_registry()
    lifecycle = ModelLifecycle(live_registry)
    managed = run_closed_loop(
        scenario, live_registry, policy=None, key_fn=key_fn,
        lifecycle=lifecycle,
    )
    return frozen, managed, lifecycle


class TestDriftDetection:
    def test_drift_monitor_flags_every_class(self, drift_runs):
        _, _, lifecycle = drift_runs
        flagged = {
            signal.key
            for record in lifecycle.monitor.records
            for signal in record.signals
            if signal.mean_abs_gamma_c
            >= lifecycle.config.drift.gamma_threshold_c
        }
        assert len(flagged) == N_CLASSES

    def test_gamma_saturates_after_the_ramp(self, drift_runs):
        _, _, lifecycle = drift_runs
        # Pre-ramp (post-warm-up) γ is small; deep into the ramp it is not.
        early = lifecycle.monitor.records[15]
        late = next(
            r for r in lifecycle.monitor.records if r.time_s >= 4200.0
        )
        assert max(s.mean_abs_gamma_c for s in early.signals) < 2.0
        assert max(s.mean_abs_gamma_c for s in late.signals) >= 2.0


class TestRetraining:
    def test_every_class_retrained_and_swapped(self, drift_runs):
        _, _, lifecycle = drift_runs
        assert lifecycle.n_rounds > 0
        assert lifecycle.n_swaps >= N_CLASSES
        assert len(lifecycle.retrained_keys()) == N_CLASSES
        registry = lifecycle.registry
        for key in lifecycle.retrained_keys():
            assert registry.current_version(key) >= 2

    def test_frozen_arm_registry_untouched(self, drift_runs):
        frozen, _, _ = drift_runs
        registry = frozen.fleet.registry
        for key in registry.keys():
            if not registry.is_alias(key):
                assert registry.current_version(key) == 1

    def test_rounds_used_full_windows(self, drift_runs):
        _, _, lifecycle = drift_runs
        for round_ in lifecycle.rounds:
            assert round_.time_s >= lifecycle.config.planner.window_s


class TestAcceptance:
    def test_lifecycle_ends_with_strictly_lower_windowed_mae(self, drift_runs):
        frozen, managed, _ = drift_runs
        for window in (20, 30):
            frozen_mae = frozen.ledger.windowed_forecast_error_c(window)
            managed_mae = managed.ledger.windowed_forecast_error_c(window)
            assert np.isfinite(frozen_mae) and np.isfinite(managed_mae)
            assert managed_mae < frozen_mae

    def test_no_more_sustained_hotspots_than_frozen(self, drift_runs):
        frozen, managed, _ = drift_runs
        assert len(managed.ledger.sustained_hotspots()) <= len(
            frozen.ledger.sustained_hotspots()
        )

    def test_identical_physics_without_actuation(self, drift_runs):
        """policy=None in both arms: the lifecycle only changes models,
        so the measured thermal trajectories are bit-equal."""
        frozen, managed, _ = drift_runs
        assert frozen.measured_temperatures() == managed.measured_temperatures()
        assert frozen.ledger.moves_issued == 0
        assert managed.ledger.moves_issued == 0
