"""Unit tests for the γ-saturation drift monitor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lifecycle import DriftMonitor, DriftMonitorConfig


class FakeFleet:
    """Just enough of a PredictionFleet for the monitor: names/keys/γ."""

    def __init__(self, names, keys, gamma):
        self.names = list(names)
        self.model_keys = list(keys)
        self.gamma = np.asarray(gamma, dtype=float)


def fleet(gamma_by_class):
    names, keys, gamma = [], [], []
    for key, values in gamma_by_class.items():
        for i, value in enumerate(values):
            names.append(f"{key}-s{i}")
            keys.append(key)
            gamma.append(value)
    return FakeFleet(names, keys, gamma)


def feed(monitor, gamma_by_class, times):
    for t in times:
        monitor.observe_fleet(t, fleet(gamma_by_class))


class TestSignals:
    def test_groups_by_class_and_aggregates_gamma(self):
        monitor = DriftMonitor(DriftMonitorConfig(warmup_intervals=0))
        record = monitor.observe_fleet(
            60.0, fleet({"a": [1.0, -3.0], "b": [0.5]})
        )
        assert [s.key for s in record.signals] == ["a", "b"]
        sig_a = record.signal("a")
        assert sig_a.n_servers == 2
        assert sig_a.mean_abs_gamma_c == pytest.approx(2.0)
        assert sig_a.max_abs_gamma_c == pytest.approx(3.0)
        assert record.signal("missing") is None

    def test_without_telemetry_error_columns_are_nan(self):
        monitor = DriftMonitor(DriftMonitorConfig(warmup_intervals=0))
        record = monitor.observe_fleet(60.0, fleet({"a": [1.0]}))
        assert np.isnan(record.signal("a").forecast_mae_c)
        assert record.signal("a").forecasts_scored == 0

    def test_class_history(self):
        monitor = DriftMonitor(DriftMonitorConfig(warmup_intervals=0))
        feed(monitor, {"a": [1.0], "b": [0.1]}, [60.0, 120.0])
        history = monitor.class_history("a")
        assert len(history) == 2
        assert all(s.key == "a" for s in history)


class TestStaleness:
    def test_sustained_saturation_flags_class(self):
        monitor = DriftMonitor(
            DriftMonitorConfig(
                gamma_threshold_c=2.0, sustain_intervals=3, warmup_intervals=0
            )
        )
        feed(monitor, {"hot": [3.0, 2.5], "cool": [0.2, 0.1]}, [60, 120, 180])
        assert monitor.stale_classes() == ["hot"]

    def test_single_spike_is_not_stale(self):
        monitor = DriftMonitor(
            DriftMonitorConfig(sustain_intervals=3, warmup_intervals=0)
        )
        feed(monitor, {"a": [0.1]}, [60, 120])
        monitor.observe_fleet(180, fleet({"a": [5.0]}))
        assert monitor.stale_classes() == []

    def test_fewer_records_than_sustain_window(self):
        monitor = DriftMonitor(
            DriftMonitorConfig(sustain_intervals=3, warmup_intervals=0)
        )
        feed(monitor, {"a": [5.0]}, [60, 120])
        assert monitor.stale_classes() == []

    def test_warmup_intervals_never_count(self):
        # Saturated from the very first interval, but the first two
        # records are warm-up: staleness needs warmup + sustain records.
        monitor = DriftMonitor(
            DriftMonitorConfig(sustain_intervals=2, warmup_intervals=2)
        )
        feed(monitor, {"a": [5.0]}, [60, 120, 180])
        assert monitor.stale_classes() == []
        monitor.observe_fleet(240, fleet({"a": [5.0]}))
        assert monitor.stale_classes() == ["a"]

    def test_min_servers_suppresses_tiny_classes(self):
        monitor = DriftMonitor(
            DriftMonitorConfig(
                sustain_intervals=2, warmup_intervals=0, min_servers=2
            )
        )
        feed(monitor, {"tiny": [9.0], "big": [3.0, 3.0]}, [60, 120])
        assert monitor.stale_classes() == ["big"]

    def test_recovered_class_unflags(self):
        monitor = DriftMonitor(
            DriftMonitorConfig(sustain_intervals=2, warmup_intervals=0)
        )
        feed(monitor, {"a": [5.0]}, [60, 120])
        assert monitor.stale_classes() == ["a"]
        feed(monitor, {"a": [0.1]}, [180])
        assert monitor.stale_classes() == []


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gamma_threshold_c": 0.0},
            {"sustain_intervals": 0},
            {"min_servers": 0},
            {"warmup_intervals": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            DriftMonitorConfig(**kwargs)
