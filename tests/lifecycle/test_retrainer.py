"""Unit tests for the lockstep batched retrainer."""

import numpy as np
import pytest

from repro.core.stable import StableTemperaturePredictor
from repro.lifecycle import Retrainer, RetrainerConfig
from repro.lifecycle.planner import ClassRecordSet, RetrainPlan
from repro.serving import ModelRegistry
from repro.svm.svr import EpsilonSVR
from tests.conftest import make_record


def training_records(offset=0.0, slope=2.5):
    return [
        make_record(
            psi=40.0 + offset + slope * i,
            n_vms=2 + i % 6,
            util=0.2 + 0.05 * i,
        )
        for i in range(12)
    ]


def fresh_records(offset, n=20):
    """A drifted record set: a smooth, learnable ψ(util, n_vms) mapping
    shifted ``offset`` degrees away from the deployed model's regime."""
    records = []
    for i in range(n):
        util = 0.2 + 0.03 * i
        n_vms = 2 + i % 6
        records.append(
            make_record(
                psi=34.0 + offset + 22.0 * util + 1.8 * n_vms,
                n_vms=n_vms,
                util=util,
            )
        )
    return tuple(records)


@pytest.fixture()
def registry():
    reg = ModelRegistry()
    predictor = StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1)
    predictor.fit(training_records())
    reg.register("default", predictor)
    reg.register("class-a", predictor)
    reg.register("class-b", predictor)
    reg.alias("class-small", "default")
    return reg


def plan_for(keys_and_records, time_s=3600.0):
    return RetrainPlan(
        time_s=time_s,
        window_s=1800.0,
        classes=tuple(
            ClassRecordSet(
                key=key,
                server_names=tuple(f"{key}-s{i}" for i in range(len(records))),
                records=records,
            )
            for key, records in keys_and_records
        ),
        skipped=(),
    )


class TestRetrainRound:
    def test_swap_publishes_next_version(self, registry):
        old = registry.resolve("class-a")
        round_ = Retrainer(registry).retrain(
            plan_for([("class-a", fresh_records(3.0))])
        )
        assert round_.n_retrained == 1
        assert round_.held == ()
        outcome = round_.outcomes[0]
        assert outcome.action == "swap"
        assert outcome.version == 2
        assert outcome.n_records == 20
        assert np.isfinite(outcome.train_mse)
        # The gate saw a real improvement: deployed badly wrong on the
        # drifted records, fresh model's CV much better.
        assert outcome.cv_mse < outcome.deployed_mse
        new = registry.resolve("class-a")
        assert new is not old
        assert new.version == 2
        assert new.scaler is old.scaler  # svm-scale map carried forward
        assert registry.resolve("default").version == 1  # untouched

    def test_batched_round_matches_sequential_fits(self, registry):
        """One lockstep round is bit-identical to refitting each class
        alone with EpsilonSVR.fit at the same hyper-parameters."""
        sets = [
            ("class-a", fresh_records(3.0)),
            ("class-b", fresh_records(-2.0)),
        ]
        expected = {}
        for key, records in sets:
            entry = registry.resolve(key)
            x = entry.scaler.transform(entry.extractor.matrix(list(records)))
            y = entry.extractor.targets(list(records))
            solo = EpsilonSVR(
                kernel=entry.model.kernel,
                c=entry.model.c,
                epsilon=entry.model.epsilon,
                max_iter=50_000,
            ).fit(x, y)
            expected[key] = np.atleast_1d(solo.predict(x))

        Retrainer(registry).retrain(plan_for(sets))
        for key, records in sets:
            entry = registry.resolve(key)
            assert entry.version == 2
            x = entry.scaler.transform(entry.extractor.matrix(list(records)))
            assert np.array_equal(
                np.atleast_1d(entry.model.predict(x)), expected[key]
            )

    def test_aliased_class_is_promoted(self, registry):
        round_ = Retrainer(registry).retrain(
            plan_for([("class-small", fresh_records(5.0))])
        )
        outcome = round_.outcomes[0]
        assert outcome.action == "promote"
        assert outcome.version == 1
        assert not registry.is_alias("class-small")
        assert registry.resolve("class-small") is not registry.resolve("default")
        assert (
            registry.resolve("class-small").scaler
            is registry.resolve("default").scaler
        )

    def test_unknown_class_is_registered(self, registry):
        round_ = Retrainer(registry).retrain(
            plan_for([("class-new", fresh_records(1.0))])
        )
        outcome = round_.outcomes[0]
        assert outcome.action == "register"
        assert outcome.version == 1
        assert "class-new" in registry
        assert registry.resolve("class-new").version == 1

    def test_gate_holds_when_deployed_model_still_fits(self, registry):
        """False-alarm retrain: fresh records the incumbent explains are
        held — the registry keeps serving the deployed version."""
        round_ = Retrainer(registry).retrain(
            plan_for([("class-a", tuple(training_records()))])
        )
        assert round_.n_retrained == 0
        key, reason = round_.held[0]
        assert key == "class-a"
        assert "not better than deployed" in reason
        assert registry.resolve("class-a").version == 1

    def test_gate_disabled_publishes_unconditionally(self, registry):
        round_ = Retrainer(
            registry, RetrainerConfig(validation_splits=0)
        ).retrain(plan_for([("class-a", tuple(training_records()))]))
        assert round_.n_retrained == 1
        assert np.isnan(round_.outcomes[0].cv_mse)
        assert registry.resolve("class-a").version == 2

    def test_empty_plan_is_a_noop_round(self, registry):
        plan = RetrainPlan(
            time_s=100.0, window_s=1800.0, classes=(),
            skipped=(("class-a", "why not"),),
        )
        round_ = Retrainer(registry).retrain(plan)
        assert round_.n_retrained == 0
        assert round_.skipped == (("class-a", "why not"),)
        assert registry.resolve("class-a").version == 1

    def test_round_report_fields(self, registry):
        round_ = Retrainer(
            registry, RetrainerConfig(max_iter=20_000)
        ).retrain(plan_for([("class-a", fresh_records(2.0))]))
        assert round_.time_s == 3600.0
        assert round_.keys == ["class-a"]
        assert round_.duration_s >= 0.0
