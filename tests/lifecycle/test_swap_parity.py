"""Swap-parity suite: a no-op hot-swap is bitwise invisible.

The registry's swap contract: publishing a new model version must not
disturb in-flight serving state. The sharpest test is a *no-op* swap —
swapping in a bit-identical retrained model mid-run must leave every
subsequent fleet forecast bit-identical to the never-swapped run:
calibration state, Δ_update deadlines, and γ all survive the swap
untouched, and ψ_stable re-queries (retargets) through the new entry
return the exact same bits.
"""

import numpy as np
import pytest

from repro.control import run_closed_loop
from repro.core.stable import StableTemperaturePredictor
from repro.experiments.scenarios import diurnal_fleet_scenario
from repro.serving import ModelRegistry, PredictionFleet
from tests.conftest import make_record


def training_records():
    return [
        make_record(psi=40.0 + 2.5 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
        for i in range(12)
    ]


def fitted_predictor():
    """Deterministic training: every call returns a bit-identical model."""
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(
        training_records()
    )


def build_fleet():
    registry = ModelRegistry()
    registry.register("default", fitted_predictor())
    fleet = PredictionFleet(registry)
    fleet.track(
        ["a", "b", "c"],
        [make_record(psi=None, n_vms=2 + i) for i in range(3)],
        np.zeros(3),
        np.array([40.0, 44.0, 48.0]),
    )
    return registry, fleet


def drive(fleet, times):
    """Observe + forecast a deterministic measurement sequence."""
    out = []
    for t in times:
        measured = np.array([50.0, 55.0, 60.0]) + 0.01 * t
        fleet.observe(np.full(3, t), measured)
        out.append(fleet.predict_ahead(np.full(3, t))[1].copy())
    return out


class TestFleetLevelSwapParity:
    def test_noop_swap_leaves_all_subsequent_state_bitwise_identical(self):
        reg_a, fleet_a = build_fleet()
        reg_b, fleet_b = build_fleet()
        first = [20.0, 40.0, 65.0, 90.0]
        tail = [120.0, 150.0, 200.0, 260.0, 333.0]

        before_a = drive(fleet_a, first)
        before_b = drive(fleet_b, first)
        for x, y in zip(before_a, before_b):
            assert np.array_equal(x, y)

        # Mid-run: swap in a bit-identical retrained model (B only).
        entry = reg_b.swap("default", fitted_predictor())
        assert entry.version == 2

        after_a = drive(fleet_a, tail)
        after_b = drive(fleet_b, tail)
        for x, y in zip(after_a, after_b):
            assert np.array_equal(x, y)
        assert np.array_equal(fleet_a.gamma, fleet_b.gamma)
        assert np.array_equal(fleet_a._next_update, fleet_b._next_update)
        assert np.array_equal(fleet_a._phi0, fleet_b._phi0)
        assert np.array_equal(fleet_a._psi, fleet_b._psi)

    def test_retarget_after_noop_swap_returns_identical_psi(self):
        reg_a, fleet_a = build_fleet()
        reg_b, fleet_b = build_fleet()
        drive(fleet_a, [30.0, 60.0])
        drive(fleet_b, [30.0, 60.0])
        reg_b.swap("default", fitted_predictor())

        record = make_record(psi=None, n_vms=7)
        psi_a = fleet_a.retarget(
            ["b"], [record], np.array([90.0]), np.array([57.0])
        )
        psi_b = fleet_b.retarget(
            ["b"], [record], np.array([90.0]), np.array([57.0])
        )
        assert np.array_equal(psi_a, psi_b)
        # And the post-retarget forecasts stay in lockstep.
        after_a = drive(fleet_a, [100.0, 130.0, 700.0])
        after_b = drive(fleet_b, [100.0, 130.0, 700.0])
        for x, y in zip(after_a, after_b):
            assert np.array_equal(x, y)


class NoOpSwapLifecycle:
    """Sixth stage that hot-swaps every model with itself each interval."""

    def __init__(self, registry):
        self.registry = registry
        self.swaps = 0

    def step(self, sim, time_s, fleet):
        for key in self.registry.keys():
            if not self.registry.is_alias(key):
                entry = self.registry.resolve(key)
                self.registry.swap_model(key, entry.model)
                self.swaps += 1
        return None


class TestClosedLoopSwapParity:
    @pytest.fixture(scope="class")
    def runs(self):
        scenario = diurnal_fleet_scenario(
            n_servers=6, seed=61_000, duration_s=1500.0
        )

        def run(with_noop_lifecycle):
            registry = ModelRegistry()
            registry.register("default", fitted_predictor())
            lifecycle = (
                NoOpSwapLifecycle(registry) if with_noop_lifecycle else None
            )
            result = run_closed_loop(
                scenario, registry, policy=None, lifecycle=lifecycle
            )
            return result, lifecycle

        plain, _ = run(False)
        swapped, lifecycle = run(True)
        assert lifecycle.swaps > 0
        return plain, swapped

    def test_every_forecast_bit_identical(self, runs):
        plain, swapped = runs
        for server in plain.simulation.cluster.servers:
            a = plain.simulation.telemetry.for_server(server.name)
            b = swapped.simulation.telemetry.for_server(server.name)
            assert np.array_equal(
                a.predicted_cpu_temperature.values_array(),
                b.predicted_cpu_temperature.values_array(),
            )
            assert np.array_equal(
                a.predicted_cpu_temperature.times_array(),
                b.predicted_cpu_temperature.times_array(),
            )

    def test_calibration_state_bit_identical(self, runs):
        plain, swapped = runs
        assert np.array_equal(plain.fleet.gamma, swapped.fleet.gamma)
        assert np.array_equal(
            plain.fleet._next_update, swapped.fleet._next_update
        )

    def test_ledgers_identical(self, runs):
        plain, swapped = runs
        rows_a = [
            (r.time_s, r.predicted_hotspot_names, r.forecast_error_c)
            for r in plain.ledger.records
        ]
        rows_b = [
            (r.time_s, r.predicted_hotspot_names, r.forecast_error_c)
            for r in swapped.ledger.records
        ]
        assert len(rows_a) > 0

        def canon(rows):
            return [
                (t, names, "nan" if np.isnan(e) else e) for t, names, e in rows
            ]

        assert canon(rows_a) == canon(rows_b)

    def test_swapped_registry_really_revved(self, runs):
        _, swapped = runs
        assert swapped.plane.lifecycle.registry.current_version("default") > 1
