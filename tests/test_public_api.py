"""Public API surface tests.

Guards the contract README documents: everything in ``repro.__all__``
must be importable from the top level, and the error hierarchy must be
catchable via the shared base class.
"""

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_key_classes_exported(self):
        for name in (
            "StableTemperaturePredictor",
            "DynamicTemperaturePredictor",
            "PredefinedCurve",
            "RuntimeCalibrator",
            "EpsilonSVR",
            "ExperimentRecord",
            "PredictionConfig",
        ):
            assert name in repro.__all__

    def test_workflow_functions_exported(self):
        for name in (
            "run_experiment",
            "train_stable_predictor",
            "replay_dynamic_prediction",
            "build_fig1a",
            "build_fig1b",
            "build_fig1c",
        ):
            assert name in repro.__all__


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_classes = [
            getattr(errors, name)
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
            and name != "ReproError"
        ]
        assert len(error_classes) >= 8
        for cls in error_classes:
            assert issubclass(cls, errors.ReproError), cls

    def test_catching_the_base_class_works(self):
        from repro.config import PredictionConfig

        with pytest.raises(errors.ReproError):
            PredictionConfig(learning_rate=7.0)

    def test_errors_carry_informative_messages(self):
        from repro.config import PredictionConfig

        with pytest.raises(errors.ReproError, match="learning_rate"):
            PredictionConfig(learning_rate=7.0)
