"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_exist(self):
        parser = build_parser()
        for command in (
            "fig1a", "fig1b", "fig1c", "dataset", "fleet-predict",
            "fleet-train", "fleet-manage", "fleet-lifecycle", "fleet-serve",
        ):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.handler)

    def test_fleet_manage_flags(self):
        args = build_parser().parse_args(
            ["fleet-manage", "--scenario", "thermal-cascade", "--policy",
             "reactive", "--servers", "12", "--duration", "1800",
             "--threshold", "72", "--margin", "3", "--interval", "30",
             "--budget", "2", "--quick"]
        )
        assert args.scenario == "thermal-cascade"
        assert args.policy == "reactive"
        assert args.servers == 12
        assert args.duration == 1800.0
        assert args.threshold == 72.0
        assert args.margin == 3.0
        assert args.interval == 30.0
        assert args.budget == 2
        assert args.no_control is False

    def test_fleet_manage_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet-manage", "--scenario", "heatwave"])

    def test_fleet_lifecycle_flags(self):
        args = build_parser().parse_args(
            ["fleet-lifecycle", "--classes", "3", "--servers-per-class", "5",
             "--duration", "5400", "--train-duration", "1200",
             "--gamma-threshold", "1.5", "--window", "900",
             "--mae-window", "15", "--quick"]
        )
        assert args.classes == 3
        assert args.servers_per_class == 5
        assert args.duration == 5400.0
        assert args.train_duration == 1200.0
        assert args.gamma_threshold == 1.5
        assert args.window == 900.0
        assert args.mae_window == 15
        assert args.quick is True

    def test_fleet_train_flags(self):
        args = build_parser().parse_args(
            ["fleet-train", "--classes", "8", "--servers-per-class", "4",
             "--duration", "1200", "--serve-duration", "600", "--quick"]
        )
        assert args.classes == 8
        assert args.servers_per_class == 4
        assert args.duration == 1200.0
        assert args.serve_duration == 600.0
        assert args.quick is True

    def test_fleet_predict_flags(self):
        args = build_parser().parse_args(
            ["fleet-predict", "--servers", "16", "--duration", "600",
             "--n-train", "20", "--threshold", "70", "--quick"]
        )
        assert args.servers == 16
        assert args.duration == 600.0
        assert args.n_train == 20
        assert args.threshold == 70.0
        assert args.quick is True

    def test_fleet_serve_flags(self):
        args = build_parser().parse_args(
            ["fleet-serve", "--classes", "4", "--servers-per-class", "8",
             "--train-duration", "1200", "--requests", "5000",
             "--arrival", "bursts", "--rate", "800", "--max-batch", "32",
             "--max-wait-ms", "10", "--no-cache", "--quick"]
        )
        assert args.classes == 4
        assert args.servers_per_class == 8
        assert args.train_duration == 1200.0
        assert args.requests == 5000
        assert args.arrival == "bursts"
        assert args.rate == 800.0
        assert args.max_batch == 32
        assert args.max_wait_ms == 10.0
        assert args.no_cache is True
        assert args.quick is True

    def test_fleet_serve_rejects_unknown_arrival(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet-serve", "--arrival", "diurnal"])

    def test_quick_and_seed_flags(self):
        args = build_parser().parse_args(["fig1a", "--quick", "--seed", "3"])
        assert args.quick is True
        assert args.seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9z"])


class TestDatasetCommand:
    def test_writes_json_records(self, tmp_path, capsys):
        out = tmp_path / "records.json"
        code = main(["dataset", "--n", "3", "--out", str(out), "--seed", "5"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload) == 3
        assert all("psi_stable_c" in record for record in payload)
        assert "wrote 3 records" in capsys.readouterr().out


class TestFigureCommandsSmoke:
    """Quick-mode smoke runs of the figure commands (still real runs,
    so these take ~1 minute combined)."""

    @pytest.mark.slow
    def test_fig1a_quick(self, capsys):
        assert main(["fig1a", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "average MSE" in out
        assert "paper" in out

    def test_fleet_predict_tiny(self, capsys):
        code = main(
            ["fleet-predict", "--quick", "--servers", "6", "--duration", "300",
             "--n-train", "12", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet MSE" in out
        assert "servers tracked      6" in out

    def test_fleet_serve_tiny(self, capsys):
        code = main(
            ["fleet-serve", "--quick", "--requests", "400", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "micro-batched" in out
        assert "per-request" in out
        assert "bit-identical" in out

    def test_fleet_serve_rejects_negative_requests(self, capsys):
        code = main(["fleet-serve", "--quick", "--requests", "-5"])
        assert code == 2
        assert "--requests" in capsys.readouterr().err
