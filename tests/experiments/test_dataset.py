"""Unit tests for record datasets."""

import pytest

from repro.errors import DatasetError
from repro.experiments.dataset import RecordDataset
from repro.rng import RngStream
from tests.conftest import make_record


@pytest.fixture
def dataset():
    return RecordDataset([make_record(psi=50.0 + i, n_vms=2 + i % 5) for i in range(20)])


class TestContainer:
    def test_len_iter_getitem(self, dataset):
        assert len(dataset) == 20
        assert dataset[0].require_output() == 50.0
        assert len(list(dataset)) == 20

    def test_append_extend(self):
        ds = RecordDataset()
        ds.append(make_record())
        ds.extend([make_record(), make_record()])
        assert len(ds) == 3

    def test_records_returns_copy(self, dataset):
        records = dataset.records
        records.clear()
        assert len(dataset) == 20


class TestSplit:
    def test_split_sizes(self, dataset):
        train, test = dataset.split(0.8, rng=RngStream(1, "split"))
        assert len(train) == 16
        assert len(test) == 4

    def test_split_partitions_all_records(self, dataset):
        train, test = dataset.split(0.7, rng=RngStream(2, "split"))
        ids = sorted(r.require_output() for r in list(train) + list(test))
        assert ids == sorted(r.require_output() for r in dataset)

    def test_split_deterministic_for_stream(self, dataset):
        a_train, _ = dataset.split(0.8, rng=RngStream(3, "split"))
        b_train, _ = dataset.split(0.8, rng=RngStream(3, "split"))
        assert [r.require_output() for r in a_train] == [
            r.require_output() for r in b_train
        ]

    def test_unshuffled_split_preserves_order(self, dataset):
        train, test = dataset.split(0.5)
        assert [r.require_output() for r in train] == [50.0 + i for i in range(10)]

    def test_rejects_degenerate_fraction(self, dataset):
        with pytest.raises(DatasetError):
            dataset.split(0.0)
        with pytest.raises(DatasetError):
            dataset.split(1.0)

    def test_rejects_tiny_dataset(self):
        with pytest.raises(DatasetError):
            RecordDataset([make_record()]).split(0.5)


class TestPersistence:
    def test_json_round_trip(self, dataset, tmp_path):
        path = tmp_path / "records.json"
        dataset.save_json(path)
        restored = RecordDataset.load_json(path)
        assert len(restored) == len(dataset)
        assert restored[3].to_dict() == dataset[3].to_dict()

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(DatasetError):
            RecordDataset.load_json(path)


class TestSummaryAndFilter:
    def test_summary_statistics(self, dataset):
        summary = dataset.summary()
        assert summary["n"] == 20.0
        assert summary["n_labelled"] == 20.0
        assert summary["psi_min"] == 50.0
        assert summary["psi_max"] == 69.0
        assert summary["vms_min"] == 2.0

    def test_summary_without_labels(self):
        ds = RecordDataset([make_record(psi=None)])
        assert ds.summary() == {"n": 1.0, "n_labelled": 0.0}

    def test_filter(self, dataset):
        small = dataset.filter(lambda r: r.n_vms == 2)
        assert len(small) == 4
        assert all(r.n_vms == 2 for r in small)
