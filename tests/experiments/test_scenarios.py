"""Unit tests for scenario generation."""

import pytest

from repro.datacenter.server import ResourceCapacity, Server, ServerSpec
from repro.datacenter.vm import Vm, VmSpec
from repro.datacenter.workload import ConstantTask
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    FleetScenario,
    build_fleet_simulation,
    build_migration_simulation,
    build_simulation,
    class_balanced_fleet_scenario,
    cooling_failure_scenario,
    diurnal_fleet_scenario,
    flash_crowd_scenario,
    migration_scenario,
    migration_storm_scenario,
    model_drift_scenario,
    random_scenario,
    random_scenarios,
    thermal_cascade_scenario,
)


class TestRandomScenario:
    def test_deterministic_for_seed(self):
        a = random_scenario(123)
        b = random_scenario(123)
        assert a.server == b.server
        assert a.n_vms == b.n_vms
        assert [v.name for v in a.vm_specs] == [v.name for v in b.vm_specs]

    def test_different_seeds_differ(self):
        variety = {random_scenario(seed).n_vms for seed in range(120, 140)}
        assert len(variety) > 3

    def test_vm_count_in_requested_range(self):
        for seed in range(50, 70):
            scenario = random_scenario(seed, n_vms_range=(2, 12))
            assert 2 <= scenario.n_vms <= 12

    def test_pinned_fan_count(self):
        for seed in range(30, 40):
            assert random_scenario(seed, fan_count=4).server.fan_count == 4

    def test_env_temperature_in_range(self):
        for seed in range(30, 50):
            scenario = random_scenario(seed, env_temp_range=(18.0, 28.0))
            assert 18.0 <= scenario.environment.temperature(0.0) <= 28.0

    def test_generated_vms_always_fit(self):
        for seed in range(200, 230):
            scenario = random_scenario(seed)
            server = Server(scenario.server)
            for spec in scenario.vm_specs:
                server.host_vm(Vm(spec))  # raises CapacityError on overflow

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            random_scenario(1, n_vms_range=(5, 2))

    def test_batch_generator_counts(self):
        scenarios = random_scenarios(7, base_seed=900)
        assert len(scenarios) == 7
        assert len({s.seed for s in scenarios}) == 7


class TestBuildSimulation:
    def test_vms_running_at_start(self):
        scenario = random_scenario(55)
        sim = build_simulation(scenario)
        server = sim.cluster.server(scenario.server.name)
        assert len(server.running_vms()) == scenario.n_vms

    def test_initial_temperature_is_idle_steady_state(self):
        scenario = random_scenario(55)
        sim = build_simulation(scenario)
        server = sim.cluster.server(scenario.server.name)
        ambient = scenario.environment.temperature(0.0)
        idle = server.thermal.steady_state_cpu_temperature(0.0, ambient)
        assert server.thermal.cpu_temperature_c == pytest.approx(idle)
        assert server.thermal.cpu_temperature_c > ambient


class TestMigrationScenario:
    def test_structure(self):
        scenario = migration_scenario(42, migration_time_s=900.0)
        assert scenario.migrating_vm == "vm-migrant"
        assert scenario.migration_time_s == 900.0
        assert scenario.base.server.fan_count == 4

    def test_simulation_moves_vm(self):
        scenario = migration_scenario(42, migration_time_s=100.0, duration_s=700.0)
        sim, destination, plan = build_migration_simulation(scenario)
        assert plan.duration_s > 0
        sim.run(700.0)
        dest_server = sim.cluster.server(destination)
        assert "vm-migrant" in dest_server.vms

    def test_migration_heats_destination(self):
        scenario = migration_scenario(42, migration_time_s=900.0, duration_s=2400.0)
        sim, destination, _plan = build_migration_simulation(scenario)
        sim.run(2400.0)
        trace = sim.telemetry.for_server(destination).cpu_temperature
        before = trace.mean(700.0, 900.0)
        after = trace.mean(2100.0, 2400.0)
        assert after > before + 2.0


class TestFleetScenarios:
    def test_diurnal_fleet_shape(self):
        scenario = diurnal_fleet_scenario(n_servers=12, seed=500)
        assert scenario.n_servers == 12
        assert scenario.n_vms >= 12 * 2
        assert scenario.migrations == ()
        # Deterministic: the same seed reproduces the same fleet.
        again = diurnal_fleet_scenario(n_servers=12, seed=500)
        assert [s.name for s in again.server_specs] == [
            s.name for s in scenario.server_specs
        ]
        assert again.vm_specs[3][0].memory_gb == scenario.vm_specs[3][0].memory_gb

    def test_diurnal_fleet_builds_and_runs(self):
        scenario = diurnal_fleet_scenario(n_servers=8, seed=501, duration_s=600.0)
        sim = build_fleet_simulation(scenario)
        sim.run(120.0)
        assert sim.time_s == 120.0
        names = sim.telemetry.server_names
        assert len(names) == 8
        for name in names:
            bundle = sim.telemetry.for_server(name)
            assert len(bundle.utilization) == 120
            assert len(bundle.cpu_temperature) > 0
        # Heterogeneous hardware and load → heterogeneous temperatures.
        temps = [s.thermal.cpu_temperature_c for s in sim.cluster.servers]
        assert max(temps) - min(temps) > 1.0

    def test_diurnal_fleet_racked(self):
        scenario = diurnal_fleet_scenario(n_servers=20, seed=502)
        sim = build_fleet_simulation(scenario)
        racks = sim.cluster.racks()
        assert set(racks) == {"rack-0", "rack-1"}
        assert len(racks["rack-0"]) == 16

    def test_migration_storm_moves_vms(self):
        scenario = migration_storm_scenario(
            n_servers=8, seed=510, storm_start_s=30.0, storm_window_s=20.0,
            duration_s=300.0,
        )
        assert len(scenario.migrations) == 4
        sim = build_fleet_simulation(scenario)
        sim.run(200.0)
        for i in range(4):
            destination = sim.cluster.server(f"server-{i + 4:03d}")
            assert f"migrant-{i:03d}" in destination.vms
            assert destination.active_migrations == 0
        # The storm heats the destinations.
        assert sim.cluster.server("server-005").thermal.cpu_temperature_c > 30.0

    def test_migration_storm_matches_reference_path(self):
        def final_temps(use_fleet):
            scenario = migration_storm_scenario(
                n_servers=6, seed=511, storm_start_s=20.0, storm_window_s=15.0,
                duration_s=200.0,
            )
            sim = build_fleet_simulation(scenario, use_fleet_engine=use_fleet)
            sim.run(150.0)
            return [s.thermal.cpu_temperature_c for s in sim.cluster.servers]

        fleet = final_temps(True)
        reference = final_temps(False)
        assert fleet == pytest.approx(reference, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            migration_storm_scenario(n_servers=5)
        with pytest.raises(ConfigurationError):
            diurnal_fleet_scenario(n_servers=0)
        with pytest.raises(ConfigurationError):
            diurnal_fleet_scenario(vms_per_server=(3, 2))


class TestModelDriftScenario:
    """The lifecycle's regime-shift workload."""

    def test_fleet_is_bit_identical_to_class_balanced_at_same_seed(self):
        """The load-bearing guarantee: a registry trained on the calm
        class-balanced campaign serves the drift fleet with matching
        class keys, because both draw identical hardware + initial
        placements from the same seed."""
        calm = class_balanced_fleet_scenario(
            n_classes=3, servers_per_class=4, seed=87_000
        )
        drift = model_drift_scenario(
            n_classes=3, servers_per_class=4, seed=87_000, duration_s=3600.0
        )
        assert drift.server_specs == calm.server_specs
        assert drift.vm_specs == calm.vm_specs

    def test_ambient_ramps_and_waves_are_scheduled(self):
        scenario = model_drift_scenario(
            n_classes=2, servers_per_class=4, seed=87_000, duration_s=7200.0,
            ramp_delta_c=6.0,
        )
        env = scenario.environment
        assert env.temperature(0.0) == pytest.approx(22.0)
        assert env.temperature(7200.0) == pytest.approx(28.0)
        assert len(scenario.arrivals) > 0
        times = [t for t, _, _ in scenario.arrivals]
        assert times == sorted(times)
        # Two waves: some arrivals before 60% of the run, some after.
        assert min(times) < 0.6 * 7200.0 < max(times)

    def test_single_wave_option(self):
        scenario = model_drift_scenario(
            n_classes=2, servers_per_class=4, seed=87_000, duration_s=3600.0,
            second_wave=False,
        )
        names = {vm.name for _, _, vm in scenario.arrivals}
        assert all(name.endswith("-w0") for name in names)

    def test_arrivals_respect_static_capacity(self):
        scenario = model_drift_scenario(
            n_classes=3, servers_per_class=4, seed=87_000, duration_s=3600.0
        )
        sim = build_fleet_simulation(scenario)
        sim.run(3600.0)  # a capacity fault would raise mid-run
        hosted = sum(len(s.vms) for s in sim.cluster.servers)
        assert hosted == scenario.n_vms + len(scenario.arrivals)

    def test_rejects_bad_timing(self):
        with pytest.raises(ConfigurationError):
            model_drift_scenario(duration_s=1000.0, ramp_start_s=2000.0)
        with pytest.raises(ConfigurationError):
            model_drift_scenario(shift_fraction=1.5)


class TestControlStressScenarios:
    """The three workloads the closed-loop control plane must survive."""

    def test_cooling_failure_steps_the_room(self):
        scenario = cooling_failure_scenario(
            n_servers=8, failure_time_s=300.0, failure_delta_c=8.0,
            recovery_time_s=900.0, duration_s=1200.0,
        )
        env = scenario.environment
        assert env.temperature(0.0) == pytest.approx(22.0)
        assert env.temperature(400.0) == pytest.approx(30.0)
        assert env.temperature(1000.0) == pytest.approx(22.0)

    def test_cooling_failure_pushes_only_hot_servers_over(self):
        scenario = cooling_failure_scenario(
            n_servers=8, failure_time_s=300.0, duration_s=2400.0
        )
        sim = build_fleet_simulation(scenario)
        sim.run(2400.0)
        temps = {s.name: s.thermal.cpu_temperature_c for s in sim.cluster.servers}
        hot = [f"server-{i:03d}" for i in range(2)]
        assert all(temps[name] > 75.0 for name in hot)
        assert all(temps[name] < 65.0 for name in temps if name not in hot)

    def test_cooling_failure_hot_servers_safe_before_failure(self):
        scenario = cooling_failure_scenario(
            n_servers=8, failure_time_s=2000.0, duration_s=2400.0
        )
        sim = build_fleet_simulation(scenario)
        sim.run(1900.0)
        assert all(
            s.thermal.cpu_temperature_c < 75.0 for s in sim.cluster.servers
        )

    def test_thermal_cascade_concentrates_heat_in_rack_zero(self):
        scenario = thermal_cascade_scenario(n_servers=8, duration_s=2400.0)
        sim = build_fleet_simulation(scenario)
        racks = sim.cluster.racks()
        sim.run(2400.0)
        hot_rack = {
            name: sim.cluster.server(name).thermal.cpu_temperature_c
            for name in racks["rack-0"]
        }
        cold = {
            s.name: s.thermal.cpu_temperature_c
            for s in sim.cluster.servers
            if s.name not in hot_rack
        }
        assert all(temp > 75.0 for temp in hot_rack.values())
        assert all(temp < 65.0 for temp in cold.values())

    def test_flash_crowd_arrivals_land_mid_run(self):
        scenario = flash_crowd_scenario(
            n_servers=8, spike_time_s=300.0, duration_s=2400.0
        )
        sim = build_fleet_simulation(scenario)
        target = sim.cluster.server("server-000")
        baseline_vms = len(target.vms)
        sim.run(250.0)
        assert len(target.vms) == baseline_vms  # crowd not here yet
        sim.run(2150.0)
        assert len(target.vms) == baseline_vms + 4
        assert target.thermal.cpu_temperature_c > 75.0

    def test_stress_validation(self):
        with pytest.raises(ConfigurationError):
            cooling_failure_scenario(failure_time_s=0.0)
        with pytest.raises(ConfigurationError):
            cooling_failure_scenario(
                failure_time_s=600.0, recovery_time_s=600.0
            )
        with pytest.raises(ConfigurationError):
            cooling_failure_scenario(hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            thermal_cascade_scenario(n_servers=4)
        with pytest.raises(ConfigurationError):
            flash_crowd_scenario(spike_time_s=5000.0, duration_s=3600.0)


class TestFleetScenarioValidation:
    """Edge cases of FleetScenario's arrival/migration timing contract."""

    @staticmethod
    def _fleet(**overrides):
        from repro.thermal.environment import ConstantEnvironment

        def vm(name):
            return VmSpec(
                name=name, vcpus=2, memory_gb=4.0,
                tasks=(ConstantTask(level=0.5),),
            )

        kwargs = dict(
            name="tiny",
            server_specs=tuple(
                ServerSpec(
                    name=f"server-{i:03d}",
                    capacity=ResourceCapacity(
                        cpu_cores=8, ghz_per_core=2.4, memory_gb=32.0
                    ),
                    fan_count=2,
                    fan_speed=0.7,
                )
                for i in range(2)
            ),
            vm_specs=((vm("vm-a"),), (vm("vm-b"),)),
            environment=ConstantEnvironment(22.0),
            duration_s=600.0,
        )
        kwargs.update(overrides)
        return FleetScenario(**kwargs)

    def _arrival_vm(self):
        return VmSpec(
            name="vm-new", vcpus=2, memory_gb=4.0,
            tasks=(ConstantTask(level=0.5),),
        )

    def test_arrival_at_t0_is_legal_and_fires(self):
        scenario = self._fleet(
            arrivals=((0.0, "server-001", self._arrival_vm()),)
        )
        sim = build_fleet_simulation(scenario)
        sim.run(10.0)
        assert "vm-new" in sim.cluster.server("server-001").vms

    def test_arrival_at_or_after_duration_is_rejected(self):
        # Pinned: such an arrival would silently never fire, so the
        # scenario refuses to construct rather than lie about its load.
        for time_s in (600.0, 9000.0):
            with pytest.raises(ConfigurationError, match="silently never fire"):
                self._fleet(arrivals=((time_s, "server-001", self._arrival_vm()),))

    def test_negative_arrival_time_is_rejected(self):
        with pytest.raises(ConfigurationError, match="precedes the start"):
            self._fleet(arrivals=((-1.0, "server-001", self._arrival_vm()),))

    def test_arrival_to_unknown_server_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown server"):
            self._fleet(arrivals=((10.0, "server-042", self._arrival_vm()),))

    def test_migration_timing_and_names_validated(self):
        with pytest.raises(ConfigurationError, match="silently never fire"):
            self._fleet(migrations=((600.0, "vm-a", "server-001"),))
        with pytest.raises(ConfigurationError, match="unknown server"):
            self._fleet(migrations=((10.0, "vm-a", "server-042"),))
        with pytest.raises(ConfigurationError, match="initially placed"):
            self._fleet(migrations=((10.0, "vm-zz", "server-001"),))

    def test_simultaneous_arrival_and_migration_on_same_server(self):
        # Both land on server-001 at t=100 and must coexist: the arrival
        # hosts immediately, the migration completes after its pre-copy.
        scenario = self._fleet(
            arrivals=((100.0, "server-001", self._arrival_vm()),),
            migrations=((100.0, "vm-a", "server-001"),),
        )
        sim = build_fleet_simulation(scenario)
        sim.run(400.0)
        destination = sim.cluster.server("server-001")
        assert "vm-new" in destination.vms
        assert "vm-a" in destination.vms
        assert "vm-a" not in sim.cluster.server("server-000").vms
        assert destination.active_migrations == 0
