"""Tests for the figure builders (reduced-scale runs).

The full-scale regenerations live in ``benchmarks/``; these tests verify
the builders' mechanics and result invariants at a small scale so the
unit suite stays fast.
"""

import pytest

from repro.config import PredictionConfig
from repro.experiments.figures import build_fig1a, build_fig1b, build_fig1c


@pytest.fixture(scope="module")
def fig1a_small():
    return build_fig1a(n_train=25, n_test=5, n_folds=5, seed=11, duration_s=900.0)


@pytest.fixture(scope="module")
def fig1bc_inputs(trained_predictor):
    return trained_predictor


class TestFig1a:
    def test_case_count(self, fig1a_small):
        assert len(fig1a_small.cases) == 5

    def test_case_ids_sequential(self, fig1a_small):
        assert [c.case_id for c in fig1a_small.cases] == [1, 2, 3, 4, 5]

    def test_vm_counts_within_range(self, fig1a_small):
        assert all(2 <= c.n_vms <= 12 for c in fig1a_small.cases)

    def test_mse_is_mean_of_squared_errors(self, fig1a_small):
        expected = sum(c.squared_error for c in fig1a_small.cases) / 5
        assert fig1a_small.mse == pytest.approx(expected)

    def test_predictions_in_physical_band(self, fig1a_small):
        for case in fig1a_small.cases:
            assert 20.0 < case.predicted_c < 110.0
            assert 20.0 < case.actual_c < 110.0

    def test_training_metadata_reported(self, fig1a_small):
        assert fig1a_small.n_train == 25
        assert fig1a_small.train_mse > 0.0
        assert "C=" in fig1a_small.best_params


class TestFig1b:
    @pytest.fixture(scope="class")
    def result(self, fig1bc_inputs):
        return build_fig1b(
            fig1bc_inputs, seed=9, migration_time_s=700.0, duration_s=1800.0
        )

    def test_calibration_wins(self, result):
        assert result.calibration_wins
        assert result.mse_calibrated < result.mse_uncalibrated

    def test_migration_raises_target(self, result):
        assert result.psi_stable_after > result.psi_stable_before

    def test_trace_and_predictions_populated(self, result):
        assert len(result.trace_times) > 100
        assert len(result.predicted_cal) == len(result.target_times_cal)
        assert len(result.predicted_uncal) == len(result.target_times_uncal)

    def test_migration_lands_after_start(self, result):
        assert result.migration_lands_s > 700.0


class TestFig1c:
    @pytest.fixture(scope="class")
    def result(self, fig1bc_inputs):
        return build_fig1c(
            fig1bc_inputs,
            gaps_s=(30.0, 90.0),
            updates_s=(15.0, 60.0),
            seed=9,
            migration_time_s=700.0,
            duration_s=1800.0,
        )

    def test_matrix_shape(self, result):
        assert len(result.mse) == 2
        assert all(len(row) == 2 for row in result.mse)

    def test_longer_gap_larger_mse(self, result):
        assert result.cell(90.0, 15.0) > result.cell(30.0, 15.0)

    def test_all_cells_positive(self, result):
        assert result.min_mse > 0.0

    def test_custom_base_config_respected(self, fig1bc_inputs):
        result = build_fig1c(
            fig1bc_inputs,
            gaps_s=(30.0,),
            updates_s=(15.0,),
            seed=9,
            migration_time_s=700.0,
            duration_s=1800.0,
            base_config=PredictionConfig(learning_rate=0.5),
        )
        assert result.min_mse > 0.0
