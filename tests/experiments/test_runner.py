"""Unit tests for the experiment runner."""

import pytest

from repro.experiments.runner import (
    record_inputs_from_scenario,
    run_experiment,
)
from repro.experiments.scenarios import random_scenario


@pytest.fixture(scope="module")
def result():
    return run_experiment(random_scenario(314, duration_s=1000.0))


class TestRecordInputs:
    def test_inputs_mirror_scenario(self):
        scenario = random_scenario(777)
        record = record_inputs_from_scenario(scenario)
        assert record.theta_cpu_cores == scenario.server.capacity.cpu_cores
        assert record.theta_cpu_ghz == pytest.approx(scenario.server.capacity.total_ghz)
        assert record.theta_fan_count == scenario.server.fan_count
        assert record.n_vms == scenario.n_vms
        assert record.psi_stable_c is None

    def test_vm_records_capture_tasks(self):
        scenario = random_scenario(778)
        record = record_inputs_from_scenario(scenario)
        for vm_record, spec in zip(record.vms, scenario.vm_specs):
            assert vm_record.vcpus == spec.vcpus
            assert vm_record.task_kinds == tuple(t.kind for t in spec.tasks)
            assert 0.0 <= vm_record.nominal_utilization <= 1.0

    def test_metadata_carries_provenance(self):
        scenario = random_scenario(779)
        record = record_inputs_from_scenario(scenario)
        assert record.metadata["seed"] == 779


class TestRunExperiment:
    def test_produces_labelled_record(self, result):
        assert result.record.has_output
        assert 25.0 < result.psi_stable_c < 100.0

    def test_label_close_to_true_steady_state(self, result):
        # Eq. (1) estimator vs exact physics: within a couple of degrees.
        assert result.psi_stable_c == pytest.approx(result.true_stable_c, abs=2.5)

    def test_trace_spans_experiment(self, result):
        assert result.trace.times[0] <= 10.0
        assert result.trace.times[-1] == pytest.approx(1000.0, abs=5.0)

    def test_phi0_is_preexperiment_temperature(self, result):
        assert result.phi_0 > 20.0
        # φ(0) is the idle temperature, below the loaded stable value for
        # this seed's workload.
        assert result.phi_0 != result.psi_stable_c

    def test_deterministic(self):
        scenario = random_scenario(315, duration_s=900.0)
        a = run_experiment(scenario)
        b = run_experiment(scenario)
        assert a.psi_stable_c == b.psi_stable_c
        assert a.trace.values == b.trace.values
