"""Unit tests for ASCII reporting."""

from repro.experiments.figures import Fig1aCase, Fig1aResult, Fig1bResult, Fig1cResult
from repro.experiments.reporting import (
    ascii_table,
    format_fig1a,
    format_fig1b,
    format_fig1c,
    paper_vs_measured,
)


class TestAsciiTable:
    def test_columns_aligned(self):
        table = ascii_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_floats_formatted(self):
        table = ascii_table(["x"], [[1.23456]])
        assert "1.235" in table

    def test_header_separator_present(self):
        table = ascii_table(["a"], [[1]])
        assert "-" in table.splitlines()[1]


class TestFigureFormatters:
    def make_fig1a(self):
        cases = [
            Fig1aCase(case_id=i, n_vms=2 + i, actual_c=60.0 + i, predicted_c=60.5 + i)
            for i in range(3)
        ]
        return Fig1aResult(cases=cases, train_mse=0.5, cv_mse=0.6, n_train=100,
                           best_params="best C=1")

    def test_fig1a_mentions_average_and_paper(self):
        text = format_fig1a(self.make_fig1a())
        assert "average MSE" in text
        assert "1.10" in text
        assert "case" in text

    def test_fig1a_mse_value(self):
        result = self.make_fig1a()
        assert result.mse == 0.25  # (0.5)^2 everywhere

    def test_fig1b_mentions_both_arms(self):
        result = Fig1bResult(
            mse_calibrated=0.9, mse_uncalibrated=1.8,
            psi_stable_before=50.0, psi_stable_after=60.0, migration_lands_s=900.0,
        )
        text = format_fig1b(result)
        assert "with calibration" in text
        assert "without calibration" in text
        assert "True" in text

    def test_fig1c_matrix_rendered(self):
        result = Fig1cResult(
            gaps_s=[30.0, 60.0], updates_s=[5.0, 15.0],
            mse=[[0.4, 0.5], [1.0, 1.1]],
        )
        text = format_fig1c(result)
        assert "30s" in text
        assert "0.70-1.50" in text
        assert result.min_mse == 0.4
        assert result.max_mse == 1.1
        assert result.cell(60.0, 15.0) == 1.1

    def test_paper_vs_measured_table(self):
        text = paper_vs_measured([("Fig 1(a)", "<=1.10", "0.86", "yes")])
        assert "Fig 1(a)" in text
        assert "shape holds" in text
