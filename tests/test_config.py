"""Unit tests for configuration dataclasses."""

import pytest

from repro.config import (
    ExperimentConfig,
    PredictionConfig,
    SensorConfig,
    ThermalConfig,
)
from repro.errors import ConfigurationError


class TestPredictionConfig:
    def test_paper_defaults(self):
        config = PredictionConfig()
        assert config.t_break_s == 600.0
        assert config.learning_rate == 0.8
        assert config.prediction_gap_s == 60.0
        assert config.update_interval_s == 15.0

    def test_with_replaces_fields(self):
        config = PredictionConfig().with_(prediction_gap_s=90.0)
        assert config.prediction_gap_s == 90.0
        assert config.t_break_s == 600.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PredictionConfig().t_break_s = 1.0

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            PredictionConfig(learning_rate=1.5)

    def test_rejects_nonpositive_t_break(self):
        with pytest.raises(ConfigurationError):
            PredictionConfig(t_break_s=0.0)

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ConfigurationError):
            PredictionConfig(prediction_gap_s=-1.0)


class TestThermalConfig:
    def test_defaults_positive(self):
        config = ThermalConfig()
        assert config.cpu_heat_capacity_j_per_k > 0
        assert config.time_step_s > 0

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            ThermalConfig(cpu_heat_capacity_j_per_k=0.0)
        with pytest.raises(ConfigurationError):
            ThermalConfig(time_step_s=-1.0)

    def test_with_replaces_fields(self):
        config = ThermalConfig().with_(time_step_s=0.5)
        assert config.time_step_s == 0.5


class TestSensorConfig:
    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            SensorConfig(noise_std_c=-0.1)

    def test_zero_quantization_allowed(self):
        assert SensorConfig(quantization_c=0.0).quantization_c == 0.0

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            SensorConfig(sampling_period_s=0.0)


class TestExperimentConfig:
    def test_duration_must_exceed_t_break(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration_s=500.0, t_break_s=600.0)

    def test_valid_configuration(self):
        config = ExperimentConfig(duration_s=1800.0)
        assert config.duration_s > config.t_break_s

    def test_nested_configs_present(self):
        config = ExperimentConfig()
        assert isinstance(config.thermal, ThermalConfig)
        assert isinstance(config.sensor, SensorConfig)
