"""Unit tests for the easygrid-style grid search."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.svm.grid import grid_search_svr


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, size=(50, 3))
    y = 2.0 * x[:, 0] + np.sin(3.0 * x[:, 1]) + 0.05 * rng.normal(size=50)
    return x, y


class TestGridSearch:
    def test_evaluates_every_grid_point(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        assert len(result.trials) == 4

    def test_best_point_minimizes_cv_mse(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        best_trial = min(result.trials, key=lambda t: t[3])
        assert result.best_cv_mse == pytest.approx(best_trial[3])
        assert (result.best_c, result.best_gamma, result.best_epsilon) == best_trial[:3]

    def test_best_model_uses_winning_parameters(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(5.0,), gamma_grid=(0.5,), epsilon_grid=(0.2,), n_splits=5
        )
        model = result.best_model()
        assert model.c == 5.0
        assert model.epsilon == 0.2
        assert model.kernel.gamma == 0.5

    def test_deterministic_given_stream(self, data):
        x, y = data
        kwargs = dict(
            c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,), n_splits=5
        )
        a = grid_search_svr(x, y, rng=RngStream(9, "cv"), **kwargs)
        b = grid_search_svr(x, y, rng=RngStream(9, "cv"), **kwargs)
        assert a.best_cv_mse == b.best_cv_mse
        assert (a.best_c, a.best_gamma) == (b.best_c, b.best_gamma)

    def test_summary_mentions_parameters(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(5.0,), gamma_grid=(0.5,), epsilon_grid=(0.2,), n_splits=5
        )
        summary = result.summary()
        assert "C=5" in summary
        assert "gamma=0.5" in summary

    def test_rejects_empty_grid(self, data):
        x, y = data
        with pytest.raises(ConfigurationError):
            grid_search_svr(x, y, c_grid=())
