"""Unit tests for the easygrid-style grid search."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.svm.grid import grid_search_svr


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, size=(50, 3))
    y = 2.0 * x[:, 0] + np.sin(3.0 * x[:, 1]) + 0.05 * rng.normal(size=50)
    return x, y


class TestGridSearch:
    def test_evaluates_every_grid_point(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        assert len(result.trials) == 4

    def test_best_point_minimizes_cv_mse(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        best_trial = min(result.trials, key=lambda t: t.cv_mse)
        assert result.best_cv_mse == pytest.approx(best_trial.cv_mse)
        assert (result.best_c, result.best_gamma, result.best_epsilon) == (
            best_trial.c, best_trial.gamma, best_trial.epsilon
        )

    def test_best_model_uses_winning_parameters(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(5.0,), gamma_grid=(0.5,), epsilon_grid=(0.2,), n_splits=5
        )
        model = result.best_model()
        assert model.c == 5.0
        assert model.epsilon == 0.2
        assert model.kernel.gamma == 0.5

    def test_deterministic_given_stream(self, data):
        x, y = data
        kwargs = dict(
            c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,), n_splits=5
        )
        a = grid_search_svr(x, y, rng=RngStream(9, "cv"), **kwargs)
        b = grid_search_svr(x, y, rng=RngStream(9, "cv"), **kwargs)
        assert a.best_cv_mse == b.best_cv_mse
        assert (a.best_c, a.best_gamma) == (b.best_c, b.best_gamma)

    def test_summary_mentions_parameters(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(5.0,), gamma_grid=(0.5,), epsilon_grid=(0.2,), n_splits=5
        )
        summary = result.summary()
        assert "C=5" in summary
        assert "gamma=0.5" in summary

    def test_rejects_empty_grid(self, data):
        x, y = data
        with pytest.raises(ConfigurationError):
            grid_search_svr(x, y, c_grid=())

    def test_trials_enumerate_in_c_major_order(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        assert [(t.c, t.gamma, t.epsilon) for t in result.trials] == [
            (1.0, 0.1, 0.1), (1.0, 1.0, 0.1), (10.0, 0.1, 0.1), (10.0, 1.0, 0.1)
        ]

    def test_to_rows_matches_trials(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0,), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        rows = result.to_rows()
        assert rows == [t.astuple() for t in result.trials]
        assert all(len(row) == 4 for row in rows)

    def test_summary_table_marks_winner(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1,), epsilon_grid=(0.1,),
            n_splits=5,
        )
        table = result.summary_table()
        assert table.count("*") == 1
        assert f"{result.best_c:g}" in table

    def test_summary_table_top_truncates(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        table = result.summary_table(top=2)
        assert len(table.splitlines()) == 4  # header + rule + 2 rows


class TestGridSearchAcceleration:
    """The flag-gated fast paths agree with the sequential reference."""

    def _reference(self, data, **kwargs):
        x, y = data
        return grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5, **kwargs,
        )

    def test_thread_pool_bit_identical(self, data):
        serial = self._reference(data)
        pooled = self._reference(data, n_jobs=2, backend="thread")
        assert [t.astuple() for t in pooled.trials] == [
            t.astuple() for t in serial.trials
        ]
        assert pooled.best_cv_mse == serial.best_cv_mse

    def test_process_pool_bit_identical(self, data):
        serial = self._reference(data)
        pooled = self._reference(data, n_jobs=2, backend="process")
        assert [t.astuple() for t in pooled.trials] == [
            t.astuple() for t in serial.trials
        ]

    def test_pool_bit_identical_with_per_point_folds(self, data):
        x, y = data
        kwargs = dict(
            c_grid=(1.0, 10.0), gamma_grid=(0.1, 1.0), epsilon_grid=(0.1,),
            n_splits=5,
        )
        serial = grid_search_svr(x, y, rng=RngStream(3, "cv"), **kwargs)
        pooled = grid_search_svr(
            x, y, rng=RngStream(3, "cv"), n_jobs=2, backend="thread", **kwargs
        )
        assert [t.astuple() for t in pooled.trials] == [
            t.astuple() for t in serial.trials
        ]

    def test_warm_start_selects_same_point(self, data):
        cold = self._reference(data)
        warm = self._reference(data, warm_start=True)
        assert (warm.best_c, warm.best_gamma, warm.best_epsilon) == (
            cold.best_c, cold.best_gamma, cold.best_epsilon
        )
        # Warm starts stop at the same KKT tolerance but from a different
        # trajectory, so scores agree only to solver tolerance.
        for warm_trial, cold_trial in zip(warm.trials, cold.trials):
            assert warm_trial.cv_mse == pytest.approx(
                cold_trial.cv_mse, rel=5e-2, abs=1e-3
            )

    def test_warm_start_rejects_per_point_folds(self, data):
        x, y = data
        with pytest.raises(ConfigurationError):
            grid_search_svr(
                x, y, c_grid=(1.0,), gamma_grid=(0.1,), epsilon_grid=(0.1,),
                n_splits=5, rng=RngStream(3, "cv"), warm_start=True,
            )

    def test_warm_start_allowed_with_shared_folds(self, data):
        x, y = data
        result = grid_search_svr(
            x, y, c_grid=(1.0, 10.0), gamma_grid=(0.1,), epsilon_grid=(0.1,),
            n_splits=5, rng=RngStream(3, "cv"), warm_start=True,
            shared_folds=True,
        )
        assert len(result.trials) == 2

    def test_shared_folds_deterministic_given_stream(self, data):
        x, y = data
        kwargs = dict(
            c_grid=(1.0, 10.0), gamma_grid=(0.1,), epsilon_grid=(0.1,),
            n_splits=5, shared_folds=True,
        )
        a = grid_search_svr(x, y, rng=RngStream(9, "cv"), **kwargs)
        b = grid_search_svr(x, y, rng=RngStream(9, "cv"), **kwargs)
        assert [t.astuple() for t in a.trials] == [t.astuple() for t in b.trials]

    def test_chunked_megabatch_bit_identical(self, data, monkeypatch):
        """Memory-capped chunking must not change a single bit."""
        import repro.svm.grid as grid_mod

        serial = self._reference(data)
        monkeypatch.setattr(grid_mod, "_MAX_BATCH_ELEMENTS", 2000)
        chunked = self._reference(data)  # every chunk is a single problem
        assert [t.astuple() for t in chunked.trials] == [
            t.astuple() for t in serial.trials
        ]

    def test_rejects_bad_backend_and_jobs(self, data):
        x, y = data
        with pytest.raises(ConfigurationError):
            grid_search_svr(x, y, backend="gpu")
        with pytest.raises(ConfigurationError):
            grid_search_svr(x, y, n_jobs=0)
