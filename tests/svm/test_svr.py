"""Unit tests for the EpsilonSVR estimator."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.svm.kernels import LinearKernel, RbfKernel
from repro.svm.svr import EpsilonSVR


def wave_data(n=80, seed=2):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-3, 3, size=(n, 2))
    y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
    return x, y


class TestFitPredict:
    def test_learns_smooth_function(self):
        x, y = wave_data()
        model = EpsilonSVR(kernel=RbfKernel(gamma=0.5), c=50.0, epsilon=0.05)
        model.fit(x[:60], y[:60])
        predictions = model.predict(x[60:])
        assert np.mean((predictions - y[60:]) ** 2) < 0.05

    def test_single_row_prediction_returns_scalar_like(self):
        x, y = wave_data()
        model = EpsilonSVR().fit(x, y)
        single = model.predict(x[0])
        assert np.ndim(single) == 0

    def test_batch_prediction_shape(self):
        x, y = wave_data()
        model = EpsilonSVR().fit(x, y)
        assert model.predict(x[:7]).shape == (7,)

    def test_training_points_within_tube_plus_slack(self):
        x, y = wave_data(n=50)
        model = EpsilonSVR(kernel=RbfKernel(gamma=1.0), c=1000.0, epsilon=0.2)
        model.fit(x, y)
        residuals = np.abs(model.predict(x) - y)
        # With a huge C almost everything should sit within ε (+tolerance).
        assert np.quantile(residuals, 0.9) < 0.25

    def test_constant_target_predicts_constant(self):
        x = np.linspace(0, 1, 12).reshape(-1, 1)
        y = np.full(12, 42.0)
        model = EpsilonSVR(epsilon=0.5).fit(x, y)
        assert model.predict(x[3]) == pytest.approx(42.0, abs=0.6)
        assert model.n_support == 0


class TestStatefulness:
    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            EpsilonSVR().predict(np.zeros((1, 2)))

    def test_n_support_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            EpsilonSVR().n_support

    def test_clone_is_unfitted_with_same_params(self):
        model = EpsilonSVR(kernel=LinearKernel(), c=7.0, epsilon=0.3)
        clone = model.clone()
        assert clone.c == 7.0
        assert clone.epsilon == 0.3
        assert clone.kernel is model.kernel
        with pytest.raises(NotFittedError):
            clone.predict(np.zeros((1, 2)))

    def test_refit_replaces_model(self):
        x, y = wave_data()
        model = EpsilonSVR()
        model.fit(x, y)
        first = model.predict(x[:3]).tolist()
        model.fit(x, -y)
        second = model.predict(x[:3]).tolist()
        assert first != second


class TestValidation:
    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            EpsilonSVR().fit(np.zeros(5), np.zeros(5))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            EpsilonSVR().fit(np.zeros((5, 2)), np.zeros(4))


class TestChunkedPredict:
    def test_chunked_matches_unchunked(self):
        x, y = wave_data(n=80)
        model = EpsilonSVR().fit(x, y)
        rng = np.random.default_rng(9)
        queries = rng.uniform(-2, 2, size=(5000, x.shape[1]))
        full = model.predict(queries, chunk_size=10**9)
        chunked = model.predict(queries, chunk_size=64)
        assert np.array_equal(full, chunked)

    def test_default_chunking_engages_on_large_batches(self):
        x, y = wave_data(n=40)
        model = EpsilonSVR().fit(x, y)
        model.predict_chunk_rows = 128
        rng = np.random.default_rng(10)
        queries = rng.uniform(-2, 2, size=(1000, x.shape[1]))
        assert model.predict(queries).shape == (1000,)

    def test_single_row_still_scalar(self):
        x, y = wave_data(n=40)
        model = EpsilonSVR().fit(x, y)
        assert np.isscalar(float(model.predict(x[0])))

    def test_rejects_bad_chunk_size(self):
        x, y = wave_data(n=40)
        model = EpsilonSVR().fit(x, y)
        with pytest.raises(ValueError):
            model.predict(x, chunk_size=0)
