"""Bitwise parity of the lockstep batched SMO against the scalar solver."""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.svm.kernels import RbfKernel
from repro.svm.smo import solve_svr_dual, solve_svr_dual_batch


def make_problems(sizes, seed=0, gamma=0.5):
    """Independent regression problems of the requested sizes."""
    rng = np.random.default_rng(seed)
    problems = []
    for n in sizes:
        x = rng.uniform(-2, 2, size=(n, 3))
        y = 40.0 + 8.0 * x[:, 0] + 3.0 * np.sin(2.0 * x[:, 1]) + 0.2 * rng.normal(size=n)
        problems.append((RbfKernel(gamma=gamma).gram(x, x), y))
    return problems


def assert_results_bitwise_equal(batch, scalars):
    for index, (got, want) in enumerate(zip(batch, scalars)):
        assert np.array_equal(got.beta, want.beta), f"problem {index}: beta"
        assert got.bias == want.bias, f"problem {index}: bias"
        assert got.iterations == want.iterations, f"problem {index}: iterations"
        assert got.converged == want.converged, f"problem {index}: converged"
        assert got.kkt_gap == want.kkt_gap, f"problem {index}: kkt_gap"


class TestBitwiseParity:
    # The last case is wider than _HANDOFF_WIDTH, so the vectorized
    # lockstep rounds actually run (small batches go straight to the
    # scalar hand-off — identical results, different machinery).
    @pytest.mark.parametrize(
        "sizes",
        [
            (30,),
            (25, 25, 25),
            (18, 30, 24, 7),
            (18, 30, 24, 7, 26, 12, 21, 15, 28, 19, 23, 17),
        ],
    )
    def test_matches_scalar_solver(self, sizes):
        problems = make_problems(sizes)
        batch = solve_svr_dual_batch(
            [k for k, _ in problems], [y for _, y in problems],
            c=10.0, epsilon=0.1,
        )
        scalars = [
            solve_svr_dual(k, y, c=10.0, epsilon=0.1) for k, y in problems
        ]
        assert_results_bitwise_equal(batch, scalars)

    def test_matches_across_c_extremes(self):
        problems = make_problems((24, 31), seed=5)
        for c in (0.5, 64.0, 4096.0):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                batch = solve_svr_dual_batch(
                    [k for k, _ in problems], [y for _, y in problems],
                    c=c, epsilon=0.125, on_no_convergence="ignore",
                )
                scalars = [
                    solve_svr_dual(
                        k, y, c=c, epsilon=0.125, on_no_convergence="ignore"
                    )
                    for k, y in problems
                ]
            assert_results_bitwise_equal(batch, scalars)

    def test_matches_under_tight_iteration_budget(self):
        """Budget-exhausted problems report the same iterate and gap."""
        problems = make_problems((26, 20, 33), seed=2)
        batch = solve_svr_dual_batch(
            [k for k, _ in problems], [y for _, y in problems],
            c=100.0, epsilon=0.01, max_iter=25, on_no_convergence="ignore",
        )
        scalars = [
            solve_svr_dual(
                k, y, c=100.0, epsilon=0.01, max_iter=25,
                on_no_convergence="ignore",
            )
            for k, y in problems
        ]
        assert_results_bitwise_equal(batch, scalars)
        assert not any(result.converged for result in batch)

    def test_matches_with_per_problem_c_and_epsilon(self):
        """A whole-grid batch: every problem has its own (C, ε) pair."""
        base = make_problems((24, 31, 19), seed=8)
        cs = (1.0, 64.0, 512.0)
        eps = (0.125, 0.5, 0.01)
        kernels = [k for _ in cs for k, _ in base]
        targets = [y for _ in cs for _, y in base]
        c_vec = [c for c in cs for _ in base]
        e_vec = [e for e in eps for _ in base]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            batch = solve_svr_dual_batch(
                kernels, targets, c=c_vec, epsilon=e_vec,
                max_iter=20_000, on_no_convergence="ignore",
            )
            scalars = [
                solve_svr_dual(
                    k, y, c=c, epsilon=e, max_iter=20_000,
                    on_no_convergence="ignore",
                )
                for k, y, c, e in zip(kernels, targets, c_vec, e_vec)
            ]
        assert_results_bitwise_equal(batch, scalars)

    def test_matches_with_warm_starts(self):
        problems = make_problems((22, 28), seed=9)
        kernels = [k for k, _ in problems]
        targets = [y for _, y in problems]
        first = solve_svr_dual_batch(kernels, targets, c=2.0, epsilon=0.1)
        betas = [result.beta for result in first]
        batch = solve_svr_dual_batch(
            kernels, targets, c=16.0, epsilon=0.1, beta0s=betas
        )
        scalars = [
            solve_svr_dual(k, y, c=16.0, epsilon=0.1, beta0=beta)
            for (k, y), beta in zip(problems, betas)
        ]
        assert_results_bitwise_equal(batch, scalars)

    def test_straggler_fold_compaction_keeps_parity(self):
        """One hard problem among many easy ones: the batch must run wide
        (well above the scalar hand-off width), compact repeatedly as the
        easy problems converge, and finally hand the straggler off."""
        rng = np.random.default_rng(11)
        problems = make_problems((12,) * 15, seed=11)
        # Make the last problem much harder to converge.
        x = rng.uniform(-2, 2, size=(40, 3))
        y = 50.0 + 20.0 * rng.normal(size=40)
        problems.append((RbfKernel(gamma=0.5).gram(x, x), y))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            batch = solve_svr_dual_batch(
                [k for k, _ in problems], [y for _, y in problems],
                c=1000.0, epsilon=0.01, max_iter=5000,
                on_no_convergence="ignore",
            )
            scalars = [
                solve_svr_dual(
                    k, y, c=1000.0, epsilon=0.01, max_iter=5000,
                    on_no_convergence="ignore",
                )
                for k, y in problems
            ]
        assert_results_bitwise_equal(batch, scalars)


class TestBatchInterface:
    def test_empty_batch(self):
        assert solve_svr_dual_batch([], [], c=1.0, epsilon=0.1) == []

    def test_zero_size_problem_mixed_in(self):
        (k, y), = make_problems((20,), seed=3)
        results = solve_svr_dual_batch(
            [np.zeros((0, 0)), k], [np.zeros(0), y], c=10.0, epsilon=0.1
        )
        assert results[0].converged and results[0].beta.shape == (0,)
        assert results[0].bias == 0.0
        want = solve_svr_dual(k, y, c=10.0, epsilon=0.1)
        assert np.array_equal(results[1].beta, want.beta)
        assert results[1].bias == want.bias

    def test_rejects_length_mismatch(self):
        k = np.eye(3)
        with pytest.raises(ConfigurationError):
            solve_svr_dual_batch([k], [], c=1.0, epsilon=0.1)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            solve_svr_dual_batch(
                [np.eye(3)], [np.zeros(4)], c=1.0, epsilon=0.1
            )

    def test_rejects_bad_warm_start_length(self):
        with pytest.raises(ConfigurationError):
            solve_svr_dual_batch(
                [np.eye(3)], [np.zeros(3)], c=1.0, epsilon=0.1, beta0s=[]
            )

    def test_raise_mode_on_no_convergence(self):
        problems = make_problems((30,), seed=4)
        with pytest.raises(ConvergenceError):
            solve_svr_dual_batch(
                [problems[0][0]], [problems[0][1]],
                c=1000.0, epsilon=0.001, max_iter=5,
                on_no_convergence="raise",
            )

    def test_warn_mode_reports_failed_indices(self):
        problems = make_problems((30,), seed=4)
        with pytest.warns(RuntimeWarning, match="1/1 problems"):
            solve_svr_dual_batch(
                [problems[0][0]], [problems[0][1]],
                c=1000.0, epsilon=0.001, max_iter=5,
            )
