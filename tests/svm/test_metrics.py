"""Unit tests for regression metrics."""

import math

import pytest

from repro.svm.metrics import (
    bias,
    max_error,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    rmse,
)


class TestMse:
    def test_perfect_prediction_is_zero(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt(self):
        y_true, y_pred = [0.0, 0.0], [1.0, 3.0]
        assert rmse(y_true, y_pred) == pytest.approx(math.sqrt(5.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestOtherMetrics:
    def test_mae_known_value(self):
        assert mean_absolute_error([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_max_error(self):
        assert max_error([0.0, 0.0, 0.0], [1.0, -3.0, 2.0]) == 3.0

    def test_bias_signed(self):
        assert bias([0.0, 0.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert bias([0.0, 0.0], [-1.0, -1.0]) == pytest.approx(-1.0)
        assert bias([0.0, 0.0], [1.0, -1.0]) == pytest.approx(0.0)


class TestR2:
    def test_perfect_prediction_is_one(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_mean_prediction_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0.0

    def test_constant_target_conventions(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0
