"""Unit tests for kernel functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.svm.kernels import (
    LinearKernel,
    PolynomialKernel,
    RbfKernel,
    squared_distances,
)


@pytest.fixture
def points():
    rng = np.random.default_rng(0)
    return rng.normal(size=(12, 4))


class TestSquaredDistances:
    def test_matches_bruteforce(self, points):
        d2 = squared_distances(points, points)
        for i in range(len(points)):
            for j in range(len(points)):
                expected = float(np.sum((points[i] - points[j]) ** 2))
                assert d2[i, j] == pytest.approx(expected, abs=1e-9)

    def test_never_negative(self):
        # Catastrophic cancellation would produce tiny negatives.
        x = np.full((5, 3), 1e8)
        assert np.all(squared_distances(x, x) >= 0.0)


class TestRbf:
    def test_diagonal_is_one(self, points):
        gram = RbfKernel(gamma=0.7).gram(points, points)
        assert np.allclose(np.diag(gram), 1.0)

    def test_symmetric(self, points):
        gram = RbfKernel(gamma=0.7).gram(points, points)
        assert np.allclose(gram, gram.T)

    def test_values_in_unit_interval(self, points):
        gram = RbfKernel(gamma=0.3).gram(points, points)
        assert np.all(gram > 0.0)
        assert np.all(gram <= 1.0)

    def test_gamma_controls_locality(self, points):
        wide = RbfKernel(gamma=0.01).gram(points, points)
        narrow = RbfKernel(gamma=10.0).gram(points, points)
        off = ~np.eye(len(points), dtype=bool)
        assert wide[off].mean() > narrow[off].mean()

    def test_positive_semidefinite(self, points):
        gram = RbfKernel(gamma=0.5).gram(points, points)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert np.all(eigenvalues > -1e-10)

    def test_single_vector_input(self, points):
        row = RbfKernel(gamma=0.5).gram(points[0], points)
        assert row.shape == (1, len(points))

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ConfigurationError):
            RbfKernel(gamma=0.0)


class TestLinear:
    def test_matches_inner_product(self, points):
        gram = LinearKernel().gram(points, points)
        assert np.allclose(gram, points @ points.T)

    def test_rectangular_shapes(self, points):
        gram = LinearKernel().gram(points[:5], points[5:])
        assert gram.shape == (5, 7)


class TestPolynomial:
    def test_degree_one_is_affine_linear(self, points):
        poly = PolynomialKernel(degree=1, gamma=1.0, coef0=0.0).gram(points, points)
        assert np.allclose(poly, points @ points.T)

    def test_libsvm_convention(self, points):
        k = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)
        gram = k.gram(points, points)
        expected = (0.5 * (points @ points.T) + 1.0) ** 2
        assert np.allclose(gram, expected)

    def test_rejects_bad_degree(self):
        with pytest.raises(ConfigurationError):
            PolynomialKernel(degree=0)

    def test_names_distinct(self):
        names = {
            RbfKernel(gamma=0.1).name,
            LinearKernel().name,
            PolynomialKernel().name,
        }
        assert len(names) == 3
