"""Unit tests for kernel functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.svm.kernels import (
    LinearKernel,
    PolynomialKernel,
    RbfKernel,
    squared_distances,
)


@pytest.fixture
def points():
    rng = np.random.default_rng(0)
    return rng.normal(size=(12, 4))


class TestSquaredDistances:
    def test_matches_bruteforce(self, points):
        d2 = squared_distances(points, points)
        for i in range(len(points)):
            for j in range(len(points)):
                expected = float(np.sum((points[i] - points[j]) ** 2))
                assert d2[i, j] == pytest.approx(expected, abs=1e-9)

    def test_never_negative(self):
        # Catastrophic cancellation would produce tiny negatives.
        x = np.full((5, 3), 1e8)
        assert np.all(squared_distances(x, x) >= 0.0)


class TestRbf:
    def test_diagonal_is_one(self, points):
        gram = RbfKernel(gamma=0.7).gram(points, points)
        assert np.allclose(np.diag(gram), 1.0)

    def test_symmetric(self, points):
        gram = RbfKernel(gamma=0.7).gram(points, points)
        assert np.allclose(gram, gram.T)

    def test_values_in_unit_interval(self, points):
        gram = RbfKernel(gamma=0.3).gram(points, points)
        assert np.all(gram > 0.0)
        assert np.all(gram <= 1.0)

    def test_gamma_controls_locality(self, points):
        wide = RbfKernel(gamma=0.01).gram(points, points)
        narrow = RbfKernel(gamma=10.0).gram(points, points)
        off = ~np.eye(len(points), dtype=bool)
        assert wide[off].mean() > narrow[off].mean()

    def test_positive_semidefinite(self, points):
        gram = RbfKernel(gamma=0.5).gram(points, points)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert np.all(eigenvalues > -1e-10)

    def test_single_vector_input(self, points):
        row = RbfKernel(gamma=0.5).gram(points[0], points)
        assert row.shape == (1, len(points))

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ConfigurationError):
            RbfKernel(gamma=0.0)


class TestLinear:
    def test_matches_inner_product(self, points):
        gram = LinearKernel().gram(points, points)
        assert np.allclose(gram, points @ points.T)

    def test_rectangular_shapes(self, points):
        gram = LinearKernel().gram(points[:5], points[5:])
        assert gram.shape == (5, 7)


class TestPolynomial:
    def test_degree_one_is_affine_linear(self, points):
        poly = PolynomialKernel(degree=1, gamma=1.0, coef0=0.0).gram(points, points)
        assert np.allclose(poly, points @ points.T)

    def test_libsvm_convention(self, points):
        k = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)
        gram = k.gram(points, points)
        expected = (0.5 * (points @ points.T) + 1.0) ** 2
        assert np.allclose(gram, expected)

    def test_rejects_bad_degree(self):
        with pytest.raises(ConfigurationError):
            PolynomialKernel(degree=0)

    def test_names_distinct(self):
        names = {
            RbfKernel(gamma=0.1).name,
            LinearKernel().name,
            PolynomialKernel().name,
        }
        assert len(names) == 3


class TestGramCache:
    from repro.svm.kernels import GramCache  # noqa: F401 - import check

    def points(self, n=25, seed=3):
        rng = np.random.default_rng(seed)
        return rng.uniform(-2, 2, size=(n, 4))

    def test_bit_identical_to_direct_evaluation(self):
        from repro.svm.kernels import GramCache

        x = self.points()
        cache = GramCache(x)
        for gamma in (0.03125, 0.125, 0.5, 2.0):
            direct = RbfKernel(gamma=gamma).gram(x, x)
            assert np.array_equal(cache.gram(gamma), direct)
            # The second lookup (a cache hit for max_entries >= 1 only
            # when gamma repeats back-to-back) must stay bit-identical.
            assert np.array_equal(cache.gram(gamma), direct)

    def test_hit_and_miss_accounting(self):
        from repro.svm.kernels import GramCache

        cache = GramCache(self.points())
        cache.gram(0.1)
        cache.gram(0.1)
        cache.gram(0.1)
        assert (cache.misses, cache.hits) == (1, 2)
        cache.gram(0.5)  # miss, evicts 0.1 at max_entries=1
        cache.gram(0.1)  # miss again after eviction
        assert (cache.misses, cache.hits) == (3, 2)

    def test_eviction_bounds_memory_to_one_gamma(self):
        from repro.svm.kernels import GramCache

        cache = GramCache(self.points(), max_entries=1)
        for gamma in (0.1, 0.2, 0.4, 0.8):
            cache.gram(gamma)
            assert cache.n_cached == 1

    def test_larger_cache_keeps_lru_entries(self):
        from repro.svm.kernels import GramCache

        cache = GramCache(self.points(), max_entries=2)
        cache.gram(0.1)
        cache.gram(0.2)
        cache.gram(0.1)  # refresh 0.1 -> 0.2 becomes LRU
        cache.gram(0.4)  # evicts 0.2
        assert cache.n_cached == 2
        hits = cache.hits
        cache.gram(0.1)
        assert cache.hits == hits + 1  # still cached
        misses = cache.misses
        cache.gram(0.2)
        assert cache.misses == misses + 1  # was evicted

    def test_returned_gram_is_read_only(self):
        from repro.svm.kernels import GramCache

        cache = GramCache(self.points())
        gram = cache.gram(0.1)
        with pytest.raises(ValueError):
            gram[0, 0] = 1.0

    def test_rejects_bad_arguments(self):
        from repro.svm.kernels import GramCache

        with pytest.raises(ConfigurationError):
            GramCache(self.points(), max_entries=0)
        cache = GramCache(self.points())
        with pytest.raises(ConfigurationError):
            cache.gram(-1.0)
