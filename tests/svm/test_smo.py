"""Unit tests for the SMO ε-SVR solver, including KKT checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.svm.kernels import LinearKernel, RbfKernel
from repro.svm.smo import solve_svr_dual


def linear_data(n=40, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 1))
    y = 3.0 * x[:, 0] + 1.0 + noise * rng.normal(size=n)
    return x, y


class TestSolutionQuality:
    def test_fits_linear_function_with_linear_kernel(self):
        x, y = linear_data()
        k = LinearKernel().gram(x, x)
        result = solve_svr_dual(k, y, c=100.0, epsilon=0.05)
        predictions = k @ result.beta + result.bias
        assert np.max(np.abs(predictions - y)) < 0.1

    def test_fits_nonlinear_function_with_rbf(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-2, 2, size=(60, 1))
        y = np.sin(2.0 * x[:, 0])
        k = RbfKernel(gamma=1.0).gram(x, x)
        result = solve_svr_dual(k, y, c=100.0, epsilon=0.02)
        predictions = k @ result.beta + result.bias
        assert np.mean((predictions - y) ** 2) < 0.01

    def test_constant_targets_all_within_tube(self):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        y = np.full(10, 5.0)
        k = RbfKernel(gamma=1.0).gram(x, x)
        result = solve_svr_dual(k, y, c=10.0, epsilon=0.5)
        # Everything inside the ε-tube around a constant: trivial duals.
        assert np.allclose(result.beta, 0.0)
        assert result.bias == pytest.approx(5.0, abs=0.5)


class TestDualConstraints:
    def test_equality_constraint_holds(self):
        x, y = linear_data(noise=0.3)
        k = RbfKernel(gamma=0.5).gram(x, x)
        result = solve_svr_dual(k, y, c=10.0, epsilon=0.1)
        assert np.sum(result.beta) == pytest.approx(0.0, abs=1e-9)

    def test_box_constraint_holds(self):
        x, y = linear_data(noise=0.5)
        c = 5.0
        k = RbfKernel(gamma=0.5).gram(x, x)
        result = solve_svr_dual(k, y, c=c, epsilon=0.1)
        assert np.all(result.beta <= c + 1e-9)
        assert np.all(result.beta >= -c - 1e-9)

    def test_kkt_gap_below_tolerance_on_convergence(self):
        x, y = linear_data(noise=0.2)
        k = RbfKernel(gamma=0.5).gram(x, x)
        result = solve_svr_dual(k, y, c=10.0, epsilon=0.1, tol=1e-3)
        assert result.converged
        assert result.kkt_gap <= 1e-3 + 1e-12

    def test_support_vectors_subset_reported(self):
        x, y = linear_data(n=50, noise=0.3)
        k = RbfKernel(gamma=0.5).gram(x, x)
        result = solve_svr_dual(k, y, c=10.0, epsilon=0.3)
        assert 0 < result.n_support <= 50
        assert result.support_mask.sum() == result.n_support

    def test_epsilon_insensitive_points_have_zero_dual(self):
        # Points strictly inside the tube must not be support vectors.
        x = np.linspace(-1, 1, 30).reshape(-1, 1)
        y = 2.0 * x[:, 0]
        k = LinearKernel().gram(x, x)
        result = solve_svr_dual(k, y, c=100.0, epsilon=0.5)
        predictions = k @ result.beta + result.bias
        interior = np.abs(y - predictions) < 0.5 - 1e-6
        assert np.all(np.abs(result.beta[interior]) < 100.0 - 1e-6)


class TestRobustness:
    def test_empty_problem(self):
        result = solve_svr_dual(np.zeros((0, 0)), np.zeros(0), c=1.0, epsilon=0.1)
        assert result.converged
        assert result.beta.shape == (0,)

    def test_single_point(self):
        result = solve_svr_dual(np.array([[1.0]]), np.array([3.0]), c=1.0, epsilon=0.1)
        assert result.converged
        predictions = np.array([[1.0]]) @ result.beta + result.bias
        assert predictions[0] == pytest.approx(3.0, abs=0.2)

    def test_iteration_budget_raises_when_asked(self):
        x, y = linear_data(n=60, noise=1.0, seed=5)
        k = RbfKernel(gamma=5.0).gram(x, x)
        with pytest.raises(ConvergenceError):
            solve_svr_dual(
                k, y, c=1e6, epsilon=1e-6, max_iter=3, on_no_convergence="raise"
            )

    def test_iteration_budget_warns_by_default(self):
        x, y = linear_data(n=60, noise=1.0, seed=5)
        k = RbfKernel(gamma=5.0).gram(x, x)
        with pytest.warns(RuntimeWarning):
            solve_svr_dual(k, y, c=1e6, epsilon=1e-6, max_iter=3)

    def test_iteration_budget_silent_when_ignored(self):
        import warnings

        x, y = linear_data(n=60, noise=1.0, seed=5)
        k = RbfKernel(gamma=5.0).gram(x, x)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solve_svr_dual(
                k, y, c=1e6, epsilon=1e-6, max_iter=3, on_no_convergence="ignore"
            )


class TestValidation:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            solve_svr_dual(np.eye(3), np.zeros(4), c=1.0, epsilon=0.1)

    def test_rejects_nonpositive_c(self):
        with pytest.raises(ConfigurationError):
            solve_svr_dual(np.eye(3), np.zeros(3), c=0.0, epsilon=0.1)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ConfigurationError):
            solve_svr_dual(np.eye(3), np.zeros(3), c=1.0, epsilon=-0.1)

    def test_rejects_unknown_convergence_policy(self):
        with pytest.raises(ConfigurationError):
            solve_svr_dual(
                np.eye(3), np.zeros(3), c=1.0, epsilon=0.1, on_no_convergence="explode"
            )


class TestConvergedFlagConsistency:
    """Regression: a numerically stuck pair used to break out of the loop
    with ``converged=False`` even when the KKT gap was already at (or
    within a small multiple of) tol — callers saw spurious
    non-convergence on well-solved problems."""

    def test_converged_flag_matches_gap_on_random_problems(self):
        for seed in range(15):
            rng = np.random.default_rng(seed)
            x = rng.uniform(-1, 1, size=(40, 6))
            y = 10.0 * x[:, 0] + 3.0 * np.sin(2.0 * x[:, 1])
            k = RbfKernel(gamma=0.2).gram(x, x)
            result = solve_svr_dual(
                k, y, c=100.0, epsilon=0.1, on_no_convergence="ignore"
            )
            # Contract: the flag may never contradict the reported gap.
            if result.kkt_gap <= 1e-3:
                assert result.converged, (
                    f"seed {seed}: gap {result.kkt_gap} <= tol but converged=False"
                )

    def test_duplicated_points_still_report_convergence(self):
        # Identical rows produce zero-curvature pairs — the classic path
        # into the numerically-stuck branch.
        x = np.repeat(np.linspace(-1, 1, 8).reshape(-1, 1), 4, axis=0)
        y = np.repeat(np.linspace(0, 5, 8), 4)
        k = RbfKernel(gamma=1.0).gram(x, x)
        result = solve_svr_dual(k, y, c=50.0, epsilon=0.01)
        assert result.converged
        assert result.kkt_gap <= 10.0 * 1e-3

    def test_benchmark_problem_converges(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 10))
        y = 40.0 + 10.0 * x[:, 0] + 5.0 * np.sin(3.0 * x[:, 1])
        k = RbfKernel(gamma=0.1).gram(x, x)
        result = solve_svr_dual(k, y, c=100.0, epsilon=0.1)
        assert result.converged


class TestWarmStart:
    def make_problem(self, n=40, seed=7):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, size=(n, 4))
        y = 50.0 + 6.0 * x[:, 0] + 2.0 * np.sin(3.0 * x[:, 1]) + 0.1 * rng.normal(size=n)
        return RbfKernel(gamma=0.3).gram(x, x), y

    def test_restart_at_own_solution_converges_immediately(self):
        k, y = self.make_problem()
        cold = solve_svr_dual(k, y, c=10.0, epsilon=0.1)
        warm = solve_svr_dual(k, y, c=10.0, epsilon=0.1, beta0=cold.beta)
        assert warm.converged
        assert warm.iterations <= cold.iterations // 4

    def test_warm_start_along_c_path_cuts_iterations(self):
        k, y = self.make_problem()
        small = solve_svr_dual(k, y, c=8.0, epsilon=0.125)
        cold = solve_svr_dual(k, y, c=64.0, epsilon=0.125)
        warm = solve_svr_dual(k, y, c=64.0, epsilon=0.125, beta0=small.beta)
        assert warm.converged
        assert warm.iterations < cold.iterations

    def test_warm_start_clips_into_smaller_box(self):
        k, y = self.make_problem()
        big = solve_svr_dual(k, y, c=64.0, epsilon=0.125)
        c = 1.0
        warm = solve_svr_dual(k, y, c=c, epsilon=0.125, beta0=big.beta)
        assert warm.converged
        assert np.all(warm.beta <= c + 1e-12)
        assert np.all(warm.beta >= -c - 1e-12)

    def test_warm_and_cold_agree_to_tolerance(self):
        k, y = self.make_problem()
        small = solve_svr_dual(k, y, c=4.0, epsilon=0.1)
        cold = solve_svr_dual(k, y, c=32.0, epsilon=0.1)
        warm = solve_svr_dual(k, y, c=32.0, epsilon=0.1, beta0=small.beta)
        pred_cold = k @ cold.beta + cold.bias
        pred_warm = k @ warm.beta + warm.bias
        assert np.max(np.abs(pred_cold - pred_warm)) < 0.05

    def test_none_beta0_is_bit_identical_to_default(self):
        k, y = self.make_problem()
        a = solve_svr_dual(k, y, c=10.0, epsilon=0.1)
        b = solve_svr_dual(k, y, c=10.0, epsilon=0.1, beta0=None)
        assert np.array_equal(a.beta, b.beta)
        assert a.bias == b.bias and a.iterations == b.iterations

    def test_rejects_wrong_beta0_shape(self):
        k, y = self.make_problem()
        with pytest.raises(ConfigurationError):
            solve_svr_dual(k, y, c=10.0, epsilon=0.1, beta0=np.zeros(3))
