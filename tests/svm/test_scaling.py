"""Unit tests for feature scalers."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.svm.scaling import MinMaxScaler, StandardScaler


@pytest.fixture
def matrix():
    rng = np.random.default_rng(1)
    return rng.normal(loc=5.0, scale=3.0, size=(30, 4))


class TestMinMax:
    def test_training_data_lands_in_bounds(self, matrix):
        scaled = MinMaxScaler().fit_transform(matrix)
        assert scaled.min() >= -1.0 - 1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_extremes_map_to_bounds(self, matrix):
        scaler = MinMaxScaler()
        scaled = scaler.fit_transform(matrix)
        assert np.allclose(scaled.min(axis=0), -1.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    def test_out_of_range_extrapolates(self, matrix):
        scaler = MinMaxScaler().fit(matrix)
        beyond = matrix.max(axis=0, keepdims=True) + 10.0
        assert np.all(scaler.transform(beyond) > 1.0)

    def test_constant_feature_maps_to_midpoint(self):
        x = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        scaled = MinMaxScaler().fit_transform(x)
        assert np.allclose(scaled[:, 1], 0.0)

    def test_custom_interval(self, matrix):
        scaled = MinMaxScaler(lower=0.0, upper=1.0).fit_transform(matrix)
        assert scaled.min() >= -1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_inverse_round_trip(self, matrix):
        scaler = MinMaxScaler().fit(matrix)
        assert np.allclose(scaler.inverse_transform(scaler.transform(matrix)), matrix)

    def test_transform_before_fit_rejected(self, matrix):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(matrix)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MinMaxScaler(lower=1.0, upper=1.0)

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.empty((0, 3)))


class TestStandard:
    def test_zero_mean_unit_variance(self, matrix):
        scaled = StandardScaler().fit_transform(matrix)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_safe(self):
        x = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled[:, 1], 0.0)

    def test_inverse_round_trip(self, matrix):
        scaler = StandardScaler().fit(matrix)
        assert np.allclose(scaler.inverse_transform(scaler.transform(matrix)), matrix)

    def test_transform_before_fit_rejected(self, matrix):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(matrix)

    def test_same_map_applied_to_new_data(self, matrix):
        scaler = StandardScaler().fit(matrix)
        single = matrix[:1] + 100.0
        transformed = scaler.transform(single)
        expected = (single - matrix.mean(axis=0)) / matrix.std(axis=0)
        assert np.allclose(transformed, expected)


class TestSingleRowInput:
    """Regression: ``MinMaxScaler.transform`` raised ``IndexError`` on a
    1-D row (the constant-feature fill indexed the wrong axis)."""

    def test_minmax_accepts_1d_row(self, matrix):
        scaler = MinMaxScaler().fit(matrix)
        row = matrix[3]
        out = scaler.transform(row)
        assert out.ndim == 1
        assert np.allclose(out, scaler.transform(matrix)[3])

    def test_minmax_1d_row_with_constant_feature(self):
        x = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        scaler = MinMaxScaler().fit(x)
        out = scaler.transform(np.array([2.0, 7.0]))
        assert out.shape == (2,)
        assert out[1] == pytest.approx(0.0)  # constant → interval midpoint

    def test_minmax_1d_inverse_round_trip(self, matrix):
        scaler = MinMaxScaler().fit(matrix)
        row = matrix[0]
        assert np.allclose(scaler.inverse_transform(scaler.transform(row)), row)

    def test_standard_accepts_1d_row(self, matrix):
        scaler = StandardScaler().fit(matrix)
        row = matrix[5]
        out = scaler.transform(row)
        assert out.ndim == 1
        assert np.allclose(out, scaler.transform(matrix)[5])

    def test_standard_1d_inverse_round_trip(self, matrix):
        scaler = StandardScaler().fit(matrix)
        row = matrix[2]
        assert np.allclose(scaler.inverse_transform(scaler.transform(row)), row)

    def test_feature_count_mismatch_rejected(self, matrix):
        scaler = MinMaxScaler().fit(matrix)
        with pytest.raises(ValueError):
            scaler.transform(np.zeros(matrix.shape[1] + 1))
        with pytest.raises(ValueError):
            StandardScaler().fit(matrix).transform(np.zeros((3, matrix.shape[1] + 2)))
