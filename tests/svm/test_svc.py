"""Unit tests for the C-SVC classifier."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.svm.kernels import LinearKernel, RbfKernel
from repro.svm.svc import SupportVectorClassifier


def blobs(n=60, gap=2.0, seed=0):
    """Two Gaussian blobs separated along x₀."""
    rng = np.random.default_rng(seed)
    half = n // 2
    a = rng.normal(loc=(-gap, 0.0), scale=0.5, size=(half, 2))
    b = rng.normal(loc=(gap, 0.0), scale=0.5, size=(half, 2))
    x = np.vstack([a, b])
    y = np.concatenate([-np.ones(half), np.ones(half)])
    return x, y


def rings(n=80, seed=1):
    """Concentric rings — not linearly separable."""
    rng = np.random.default_rng(seed)
    half = n // 2
    angles = rng.uniform(0, 2 * np.pi, size=n)
    radii = np.concatenate(
        [rng.normal(1.0, 0.1, half), rng.normal(3.0, 0.1, half)]
    )
    x = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    y = np.concatenate([-np.ones(half), np.ones(half)])
    return x, y


class TestSeparable:
    def test_separable_blobs_perfect_accuracy(self):
        x, y = blobs()
        model = SupportVectorClassifier(kernel=LinearKernel(), c=10.0).fit(x, y)
        assert model.accuracy(x, y) == 1.0

    def test_generalizes_to_fresh_samples(self):
        x, y = blobs(n=80, seed=2)
        model = SupportVectorClassifier(kernel=RbfKernel(gamma=0.5), c=10.0)
        model.fit(x[:60], y[:60])
        assert model.accuracy(x[60:], y[60:]) >= 0.9

    def test_decision_sign_matches_labels(self):
        x, y = blobs()
        model = SupportVectorClassifier(kernel=LinearKernel(), c=10.0).fit(x, y)
        scores = model.decision_function(x)
        assert np.all(np.sign(scores) == y)

    def test_margin_support_vectors_subset(self):
        x, y = blobs()
        model = SupportVectorClassifier(kernel=LinearKernel(), c=10.0).fit(x, y)
        assert 0 < model.n_support < len(x)


class TestNonlinear:
    def test_rings_need_rbf(self):
        x, y = rings()
        linear = SupportVectorClassifier(kernel=LinearKernel(), c=10.0).fit(x, y)
        rbf = SupportVectorClassifier(kernel=RbfKernel(gamma=1.0), c=10.0).fit(x, y)
        assert rbf.accuracy(x, y) > 0.95
        assert rbf.accuracy(x, y) > linear.accuracy(x, y)


class TestEdgeCases:
    def test_single_class_predicts_constant(self):
        x = np.random.default_rng(0).normal(size=(10, 2))
        y = np.ones(10)
        model = SupportVectorClassifier().fit(x, y)
        assert np.all(model.predict(x) == 1.0)

    def test_single_row_prediction(self):
        x, y = blobs()
        model = SupportVectorClassifier(kernel=LinearKernel(), c=10.0).fit(x, y)
        assert model.predict(x[0]) in (-1.0, 1.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            SupportVectorClassifier().predict(np.zeros((1, 2)))

    def test_rejects_bad_labels(self):
        x = np.zeros((4, 2))
        with pytest.raises(ValueError):
            SupportVectorClassifier().fit(x, np.array([0.0, 1.0, 2.0, 1.0]))

    def test_rejects_nonpositive_c(self):
        with pytest.raises(ConfigurationError):
            SupportVectorClassifier(c=0.0)

    def test_clone_unfitted(self):
        model = SupportVectorClassifier(c=3.0)
        clone = model.clone()
        assert clone.c == 3.0
        with pytest.raises(NotFittedError):
            clone.predict(np.zeros((1, 2)))

    def test_dual_constraint_satisfied(self):
        x, y = blobs(n=40)
        model = SupportVectorClassifier(kernel=RbfKernel(gamma=0.3), c=5.0).fit(x, y)
        # Σ y_i α_i = Σ coef over support vectors must vanish.
        assert abs(float(np.sum(model._support_coef))) < 1e-8
