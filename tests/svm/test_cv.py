"""Unit tests for k-fold cross-validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.svm.cv import KFold, cross_val_mse
from repro.svm.ridge import KernelRidge


class TestKFold:
    def test_every_sample_validated_exactly_once(self):
        splitter = KFold(n_splits=4)
        seen = []
        for _train, val in splitter.split(22):
            seen.extend(val.tolist())
        assert sorted(seen) == list(range(22))

    def test_fold_sizes_differ_by_at_most_one(self):
        sizes = [len(val) for _t, val in KFold(n_splits=4).split(22)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 22

    def test_train_and_validation_disjoint(self):
        for train, val in KFold(n_splits=5).split(30):
            assert set(train.tolist()).isdisjoint(val.tolist())
            assert len(train) + len(val) == 30

    def test_shuffled_split_deterministic_for_stream(self):
        a = [val.tolist() for _t, val in KFold(4, rng=RngStream(1, "cv")).split(20)]
        b = [val.tolist() for _t, val in KFold(4, rng=RngStream(1, "cv")).split(20)]
        assert a == b

    def test_shuffled_split_differs_from_identity(self):
        identity = [val.tolist() for _t, val in KFold(4).split(20)]
        shuffled = [val.tolist() for _t, val in KFold(4, rng=RngStream(2, "cv")).split(20)]
        assert identity != shuffled

    def test_rejects_fewer_samples_than_folds(self):
        with pytest.raises(ConfigurationError):
            list(KFold(n_splits=10).split(5))

    def test_rejects_single_fold(self):
        with pytest.raises(ConfigurationError):
            KFold(n_splits=1)


class TestCrossValMse:
    def test_perfectly_learnable_function_scores_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(40, 2))
        y = x[:, 0] + 2.0 * x[:, 1]
        mse = cross_val_mse(KernelRidge(alpha=1e-6), x, y, n_splits=5)
        assert mse < 0.01

    def test_noise_floor_respected(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(60, 2))
        y = x[:, 0] + rng.normal(0, 0.5, size=60)
        mse = cross_val_mse(KernelRidge(alpha=0.1), x, y, n_splits=5)
        assert mse > 0.1  # cannot beat the noise

    def test_model_argument_not_mutated(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(30, 2))
        y = x[:, 0]
        model = KernelRidge(alpha=0.01)
        cross_val_mse(model, x, y, n_splits=5)
        # The original must remain unfitted (clones were used).
        with pytest.raises(Exception):
            model.predict(x[:1])


class TestFoldGrams:
    def make_data(self, n=30, seed=4):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, size=(n, 3))
        y = 4.0 * x[:, 0] + np.sin(2.0 * x[:, 1])
        return x, y

    def test_cached_path_bit_identical_to_plain(self):
        from repro.svm.cv import FoldGrams
        from repro.svm.kernels import RbfKernel
        from repro.svm.svr import EpsilonSVR

        x, y = self.make_data()
        model = EpsilonSVR(kernel=RbfKernel(gamma=0.4), c=8.0, epsilon=0.1)
        plain = cross_val_mse(model, x, y, n_splits=5)
        plan = FoldGrams.from_splitter(x, n_splits=5)
        cached = cross_val_mse(model, x, y, fold_grams=plan)
        assert cached == plain  # bitwise, not approx

    def test_gamma_reuse_hits_cache(self):
        from repro.svm.cv import FoldGrams
        from repro.svm.kernels import RbfKernel
        from repro.svm.svr import EpsilonSVR

        x, y = self.make_data()
        plan = FoldGrams.from_splitter(x, n_splits=5)
        model = EpsilonSVR(kernel=RbfKernel(gamma=0.4), c=8.0, epsilon=0.1)
        cross_val_mse(model, x, y, fold_grams=plan)
        assert plan.misses == 5 and plan.hits == 0
        cross_val_mse(
            model.clone(), x, y, fold_grams=plan
        )  # same gamma again: all hits
        assert plan.misses == 5 and plan.hits == 5

    def test_non_rbf_models_fall_back_to_plain_fit(self):
        from repro.svm.cv import FoldGrams

        x, y = self.make_data()
        plan = FoldGrams.from_splitter(x, n_splits=5)
        mse = cross_val_mse(KernelRidge(alpha=0.01), x, y, fold_grams=plan)
        assert mse == cross_val_mse(KernelRidge(alpha=0.01), x, y, n_splits=5)
        assert plan.misses == 0  # ridge never touched the caches

    def test_rejects_empty_folds(self):
        from repro.svm.cv import FoldGrams

        x, _ = self.make_data()
        with pytest.raises(ConfigurationError):
            FoldGrams(x, [])

    def test_rejects_plan_built_over_different_data(self):
        from repro.svm.cv import FoldGrams
        from repro.svm.kernels import RbfKernel
        from repro.svm.svr import EpsilonSVR

        x, y = self.make_data()
        plan = FoldGrams.from_splitter(x + 1.0, n_splits=5)
        model = EpsilonSVR(kernel=RbfKernel(gamma=0.4), c=8.0, epsilon=0.1)
        with pytest.raises(ConfigurationError):
            cross_val_mse(model, x, y, fold_grams=plan)
