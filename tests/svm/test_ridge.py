"""Unit tests for kernel ridge regression."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.svm.kernels import RbfKernel
from repro.svm.ridge import KernelRidge


def smooth_data(n=60, seed=4):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 2))
    y = np.cos(x[:, 0]) + 0.3 * x[:, 1]
    return x, y


class TestFitPredict:
    def test_interpolates_smooth_function(self):
        x, y = smooth_data()
        model = KernelRidge(kernel=RbfKernel(gamma=0.5), alpha=1e-4)
        model.fit(x[:45], y[:45])
        predictions = model.predict(x[45:])
        assert np.mean((predictions - y[45:]) ** 2) < 0.01

    def test_heavy_regularization_shrinks_to_mean(self):
        x, y = smooth_data()
        model = KernelRidge(alpha=1e9).fit(x, y)
        predictions = model.predict(x)
        assert np.allclose(predictions, y.mean(), atol=0.05)

    def test_single_row_prediction(self):
        x, y = smooth_data()
        model = KernelRidge().fit(x, y)
        assert np.ndim(model.predict(x[0])) == 0

    def test_clone_unfitted(self):
        model = KernelRidge(alpha=0.5)
        clone = model.clone()
        assert clone.alpha == 0.5
        with pytest.raises(NotFittedError):
            clone.predict(np.zeros((1, 2)))


class TestValidation:
    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            KernelRidge().predict(np.zeros((1, 2)))

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError):
            KernelRidge(alpha=0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            KernelRidge().fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            KernelRidge().fit(np.zeros(5), np.zeros(5))
