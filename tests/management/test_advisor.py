"""Unit tests for the migration advisor."""

import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.errors import SchedulingError
from repro.management.advisor import MigrationAdvisor
from tests.conftest import make_server_spec, make_vm


class CountingPredictor:
    """ψ = 45 + 8·n_vms·mean_util·vcpus-ish — a transparent stand-in."""

    def predict(self, record):
        load = sum(vm.vcpus * vm.nominal_utilization for vm in record.vms)
        return 45.0 + 2.5 * load

    def predict_many(self, records):
        # The advisor scores all candidates through the batched what-if
        # path; the stand-in mirrors the real predictor's batch API.
        return [self.predict(record) for record in records]


def cluster_with_hot_server():
    cluster = Cluster("adv")
    hot = Server(make_server_spec(name="hot"))
    for i in range(4):
        hot.host_vm(make_vm(f"busy-{i}", vcpus=4, level=0.9, n_tasks=4))
    cluster.add_server(hot)
    cluster.add_server(Server(make_server_spec(name="cool")))
    return cluster


class TestAdvice:
    def test_recommends_feasible_move(self):
        cluster = cluster_with_hot_server()
        advisor = MigrationAdvisor(CountingPredictor())
        advice = advisor.advise(cluster, "hot", threshold_c=85.0)
        assert advice.source == "hot"
        assert advice.destination == "cool"
        assert advice.vm_name.startswith("busy-")

    def test_source_cools_below_threshold(self):
        cluster = cluster_with_hot_server()
        advisor = MigrationAdvisor(CountingPredictor())
        advice = advisor.advise(cluster, "hot", threshold_c=85.0)
        assert advice.predicted_source_c <= 85.0

    def test_peak_is_max_of_both_sides(self):
        cluster = cluster_with_hot_server()
        advisor = MigrationAdvisor(CountingPredictor())
        advice = advisor.advise(cluster, "hot", threshold_c=85.0)
        assert advice.predicted_peak_c == max(
            advice.predicted_source_c, advice.predicted_destination_c
        )

    def test_empty_server_rejected(self):
        cluster = cluster_with_hot_server()
        advisor = MigrationAdvisor(CountingPredictor())
        with pytest.raises(SchedulingError):
            advisor.advise(cluster, "cool")

    def test_impossible_threshold_rejected(self):
        cluster = cluster_with_hot_server()
        advisor = MigrationAdvisor(CountingPredictor())
        with pytest.raises(SchedulingError):
            advisor.advise(cluster, "hot", threshold_c=30.0)

    def test_no_destination_rejected(self):
        cluster = Cluster("lonely")
        hot = Server(make_server_spec(name="hot"))
        hot.host_vm(make_vm("only", vcpus=4))
        cluster.add_server(hot)
        advisor = MigrationAdvisor(CountingPredictor())
        with pytest.raises(SchedulingError):
            advisor.advise(cluster, "hot")

    def test_capacity_respected(self):
        cluster = cluster_with_hot_server()
        # Fill the cool server's memory so nothing fits.
        cluster.server("cool").host_vm(make_vm("filler", memory_gb=63.0))
        advisor = MigrationAdvisor(CountingPredictor())
        with pytest.raises(SchedulingError):
            advisor.advise(cluster, "hot")

    def test_works_with_trained_predictor(self, trained_predictor):
        cluster = cluster_with_hot_server()
        advisor = MigrationAdvisor(trained_predictor, environment_c=22.0)
        advice = advisor.advise(cluster, "hot", threshold_c=90.0)
        assert advice.destination == "cool"
        # Moving a busy VM off must strictly cool the source prediction.
        before = trained_predictor.predict(
            __import__("repro.management.thermal_aware", fromlist=["record_for_host"])
            .record_for_host(cluster.server("hot"), 22.0)
        )
        assert advice.predicted_source_c < before
