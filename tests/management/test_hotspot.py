"""Unit tests for hotspot detection."""

import pytest

from repro.errors import ConfigurationError
from repro.management.hotspot import HotspotDetector


class TestDetection:
    def test_flags_only_exceeding_servers(self):
        detector = HotspotDetector(threshold_c=75.0)
        spots = detector.detect({"a": 80.0, "b": 70.0, "c": 76.0})
        assert [s.server_name for s in spots] == ["a", "c"]

    def test_sorted_hottest_first(self):
        detector = HotspotDetector(threshold_c=70.0)
        spots = detector.detect({"a": 75.0, "b": 90.0, "c": 80.0})
        assert [s.server_name for s in spots] == ["b", "c", "a"]

    def test_severity(self):
        detector = HotspotDetector(threshold_c=75.0)
        spot = detector.detect({"a": 82.5})[0]
        assert spot.severity_c == pytest.approx(7.5)

    def test_no_hotspots(self):
        detector = HotspotDetector(threshold_c=75.0)
        assert detector.detect({"a": 60.0}) == []

    def test_exactly_at_threshold_not_flagged(self):
        detector = HotspotDetector(threshold_c=75.0)
        assert detector.detect({"a": 75.0}) == []

    def test_ties_break_by_name(self):
        detector = HotspotDetector(threshold_c=70.0)
        spots = detector.detect({"zeta": 80.0, "alpha": 80.0})
        assert [s.server_name for s in spots] == ["alpha", "zeta"]


class TestHelpers:
    def test_headroom_signs(self):
        detector = HotspotDetector(threshold_c=75.0)
        headroom = detector.headroom({"cool": 60.0, "hot": 80.0})
        assert headroom["cool"] == pytest.approx(15.0)
        assert headroom["hot"] == pytest.approx(-5.0)

    def test_would_overheat(self):
        detector = HotspotDetector(threshold_c=75.0)
        assert detector.would_overheat(75.1)
        assert not detector.would_overheat(74.9)

    def test_rejects_implausible_threshold(self):
        with pytest.raises(ConfigurationError):
            HotspotDetector(threshold_c=-5.0)
        with pytest.raises(ConfigurationError):
            HotspotDetector(threshold_c=200.0)
