"""Unit tests for hotspot detection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.management.hotspot import HotspotDetector


class TestDetection:
    def test_flags_only_exceeding_servers(self):
        detector = HotspotDetector(threshold_c=75.0)
        spots = detector.detect({"a": 80.0, "b": 70.0, "c": 76.0})
        assert [s.server_name for s in spots] == ["a", "c"]

    def test_sorted_hottest_first(self):
        detector = HotspotDetector(threshold_c=70.0)
        spots = detector.detect({"a": 75.0, "b": 90.0, "c": 80.0})
        assert [s.server_name for s in spots] == ["b", "c", "a"]

    def test_severity(self):
        detector = HotspotDetector(threshold_c=75.0)
        spot = detector.detect({"a": 82.5})[0]
        assert spot.severity_c == pytest.approx(7.5)

    def test_no_hotspots(self):
        detector = HotspotDetector(threshold_c=75.0)
        assert detector.detect({"a": 60.0}) == []

    def test_exactly_at_threshold_not_flagged(self):
        detector = HotspotDetector(threshold_c=75.0)
        assert detector.detect({"a": 75.0}) == []

    def test_ties_break_by_name(self):
        detector = HotspotDetector(threshold_c=70.0)
        spots = detector.detect({"zeta": 80.0, "alpha": 80.0})
        assert [s.server_name for s in spots] == ["alpha", "zeta"]


class TestDictFleetParity:
    """``detect``/``headroom`` are adapters over the fleet-array core —
    the two entry points must agree exactly, ties included."""

    def test_detect_matches_detect_fleet(self):
        detector = HotspotDetector(threshold_c=72.0)
        temps = {"s0": 80.25, "s1": 64.0, "s2": 91.5, "s3": 72.0, "s4": 75.125}
        via_dict = detector.detect(temps)
        via_fleet = detector.detect_fleet(
            list(temps), np.array(list(temps.values()))
        )
        assert via_dict == via_fleet

    def test_equal_temperature_ties_order_identically(self):
        # Insertion order differs from name order on purpose: both entry
        # points must settle ties by server name, not input position.
        detector = HotspotDetector(threshold_c=70.0)
        temps = {"zeta": 80.0, "mid": 80.0, "alpha": 80.0, "beta": 75.0}
        via_dict = detector.detect(temps)
        via_fleet = detector.detect_fleet(
            list(temps), np.array(list(temps.values()))
        )
        assert [s.server_name for s in via_dict] == ["alpha", "mid", "zeta", "beta"]
        assert via_dict == via_fleet

    def test_headroom_matches_headroom_fleet(self):
        detector = HotspotDetector(threshold_c=75.0)
        temps = {"a": 60.0, "b": 80.0, "c": 75.0}
        via_dict = detector.headroom(temps)
        via_fleet = detector.headroom_fleet(np.array(list(temps.values())))
        assert list(via_dict.values()) == via_fleet.tolist()

    def test_empty_mapping(self):
        detector = HotspotDetector()
        assert detector.detect({}) == []
        assert detector.headroom({}) == {}


class TestHelpers:
    def test_headroom_signs(self):
        detector = HotspotDetector(threshold_c=75.0)
        headroom = detector.headroom({"cool": 60.0, "hot": 80.0})
        assert headroom["cool"] == pytest.approx(15.0)
        assert headroom["hot"] == pytest.approx(-5.0)

    def test_would_overheat(self):
        detector = HotspotDetector(threshold_c=75.0)
        assert detector.would_overheat(75.1)
        assert not detector.would_overheat(74.9)

    def test_rejects_implausible_threshold(self):
        with pytest.raises(ConfigurationError):
            HotspotDetector(threshold_c=-5.0)
        with pytest.raises(ConfigurationError):
            HotspotDetector(threshold_c=200.0)
