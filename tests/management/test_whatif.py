"""Unit tests for the shared batched what-if path."""

import numpy as np
import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.errors import ConfigurationError, SchedulingError
from repro.management.whatif import (
    CandidateMove,
    WhatIfScorer,
    enumerate_evictions,
    record_for_host,
)
from repro.serving import ModelRegistry
from tests.conftest import make_server_spec, make_vm


class EchoPredictor:
    """Deterministic ψ = 40 + 3·Σ(vcpus·util) stand-in with batch API."""

    def __init__(self):
        self.batch_calls = 0

    def predict(self, record):
        load = sum(vm.vcpus * vm.nominal_utilization for vm in record.vms)
        return 40.0 + 3.0 * load

    def predict_many(self, records):
        self.batch_calls += 1
        return np.array([self.predict(r) for r in records])


def cluster_of(n=3) -> Cluster:
    cluster = Cluster("whatif")
    for i in range(n):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    return cluster


class TestRecordForHost:
    def test_without_vm_drops_it(self):
        cluster = cluster_of(1)
        server = cluster.server("s0")
        server.host_vm(make_vm("keep"))
        server.host_vm(make_vm("drop"))
        record = record_for_host(server, 22.0, without_vm="drop")
        assert record.n_vms == 1
        assert record.metadata["hypothetical_removal"] == "drop"

    def test_without_unknown_vm_rejected(self):
        cluster = cluster_of(1)
        with pytest.raises(SchedulingError):
            record_for_host(cluster.server("s0"), 22.0, without_vm="ghost")

    def test_swap_combines_both(self):
        cluster = cluster_of(1)
        server = cluster.server("s0")
        server.host_vm(make_vm("old"))
        record = record_for_host(
            server, 22.0, extra_vm=make_vm("new"), without_vm="old"
        )
        assert record.n_vms == 1
        assert record.metadata["hypothetical"] is True


class TestEnumerateEvictions:
    def test_all_pairs_in_deterministic_order(self):
        cluster = cluster_of(3)
        cluster.server("s0").host_vm(make_vm("a"))
        cluster.server("s0").host_vm(make_vm("b"))
        moves = enumerate_evictions(cluster, ["s0"])
        assert [(m.vm_name, m.destination) for m in moves] == [
            ("a", "s1"), ("a", "s2"), ("b", "s1"), ("b", "s2"),
        ]

    def test_infeasible_destinations_skipped(self):
        cluster = cluster_of(2)
        cluster.server("s0").host_vm(make_vm("big", memory_gb=20.0))
        cluster.server("s1").host_vm(make_vm("filler", memory_gb=50.0))
        assert enumerate_evictions(cluster, ["s0"]) == []

    def test_destination_restriction(self):
        cluster = cluster_of(3)
        cluster.server("s0").host_vm(make_vm("a"))
        moves = enumerate_evictions(cluster, ["s0"], destinations=["s2"])
        assert [m.destination for m in moves] == ["s2"]

    def test_move_to_self_rejected(self):
        with pytest.raises(ConfigurationError):
            CandidateMove(vm_name="x", source="s0", destination="s0")


class TestWhatIfScorer:
    def test_needs_exactly_one_model_source(self):
        with pytest.raises(ConfigurationError):
            WhatIfScorer()
        with pytest.raises(ConfigurationError):
            WhatIfScorer(EchoPredictor(), registry=ModelRegistry())

    def test_scores_match_scalar_loop(self):
        cluster = cluster_of(3)
        cluster.server("s0").host_vm(make_vm("a", level=0.9))
        cluster.server("s0").host_vm(make_vm("b", level=0.4))
        cluster.server("s1").host_vm(make_vm("c", level=0.5))
        predictor = EchoPredictor()
        moves = enumerate_evictions(cluster, ["s0", "s1"])
        scores = WhatIfScorer(predictor).score_moves(cluster, moves, 22.0)
        assert predictor.batch_calls == 1
        for score in scores:
            move = score.move
            source = cluster.server(move.source)
            destination = cluster.server(move.destination)
            expected_source = predictor.predict(
                record_for_host(source, 22.0, without_vm=move.vm_name)
            )
            expected_dest = predictor.predict(
                record_for_host(
                    destination, 22.0, extra_vm=source.vms[move.vm_name]
                )
            )
            assert score.predicted_source_c == expected_source
            assert score.predicted_destination_c == expected_dest
            assert score.predicted_peak_c == max(expected_source, expected_dest)

    def test_batched_bitwise_equals_per_host_predict_many(self, trained_predictor):
        """The control-plane parity contract at unit scale: one batched
        call over deduped records == the per-host predict_many path."""
        cluster = cluster_of(4)
        for i, (vcpus, level) in enumerate([(4, 0.9), (2, 0.6), (1, 0.3)]):
            cluster.server("s0").host_vm(
                make_vm(f"vm-{i}", vcpus=vcpus, level=level, n_tasks=2)
            )
        cluster.server("s1").host_vm(make_vm("bg", level=0.5))
        moves = enumerate_evictions(cluster, ["s0"])
        scores = WhatIfScorer(trained_predictor).score_moves(cluster, moves, 22.0)
        for score in scores:
            move = score.move
            source = cluster.server(move.source)
            source_c = trained_predictor.predict_many(
                [record_for_host(source, 22.0, without_vm=move.vm_name)]
            )[0]
            dest_c = trained_predictor.predict_many(
                [
                    record_for_host(
                        cluster.server(move.destination),
                        22.0,
                        extra_vm=source.vms[move.vm_name],
                    )
                ]
            )[0]
            assert score.predicted_source_c == source_c  # bitwise
            assert score.predicted_destination_c == dest_c  # bitwise

    def test_registry_mode_uses_per_server_keys(self, trained_predictor):
        registry = ModelRegistry()
        registry.register("default", trained_predictor)
        cluster = cluster_of(2)
        cluster.server("s0").host_vm(make_vm("a", level=0.8))
        moves = enumerate_evictions(cluster, ["s0"])
        via_registry = WhatIfScorer(
            registry=registry, key_fn=lambda server: "no-such-class"
        ).score_moves(cluster, moves, 22.0)
        via_predictor = WhatIfScorer(trained_predictor).score_moves(
            cluster, moves, 22.0
        )
        for a, b in zip(via_registry, via_predictor):
            assert a.predicted_source_c == b.predicted_source_c
            assert a.predicted_destination_c == b.predicted_destination_c

    def test_unknown_vm_rejected(self):
        cluster = cluster_of(2)
        cluster.server("s0").host_vm(make_vm("a"))
        move = CandidateMove(vm_name="ghost", source="s0", destination="s1")
        with pytest.raises(SchedulingError):
            WhatIfScorer(EchoPredictor()).score_moves(cluster, [move], 22.0)

    def test_empty_moves(self):
        assert WhatIfScorer(EchoPredictor()).score_moves(cluster_of(1), [], 22.0) == []

    def test_score_placements_matches_point_calls(self):
        cluster = cluster_of(3)
        cluster.server("s1").host_vm(make_vm("x", level=0.7))
        predictor = EchoPredictor()
        vm = make_vm("incoming", vcpus=2, level=0.5)
        scored = WhatIfScorer(predictor).score_placements(
            cluster.servers, vm, 22.0
        )
        expected = [
            predictor.predict(record_for_host(server, 22.0, extra_vm=vm))
            for server in cluster.servers
        ]
        assert scored.tolist() == expected

class TestVmRecordCache:
    """The per-server VmRecord cache keyed by placement generation."""

    def test_cached_records_byte_identical_to_fresh(self):
        cluster = cluster_of(2)
        server = cluster.server("s0")
        for i in range(3):
            server.host_vm(make_vm(f"v{i}", vcpus=1 + i, level=0.2 * (i + 1)))
        scorer = WhatIfScorer(EchoPredictor())
        extra = make_vm("extra", vcpus=2, level=0.5)
        for without in (None, "v1"):
            fresh = record_for_host(server, 24.0, extra_vm=extra, without_vm=without)
            cached = scorer._record_from_base(
                server, 24.0, extra_vm=extra, without_vm=without
            )
            assert cached == fresh
            assert cached.metadata == fresh.metadata

    def test_cache_reused_while_placement_unchanged(self):
        cluster = cluster_of(1)
        server = cluster.server("s0")
        server.host_vm(make_vm("a"))
        scorer = WhatIfScorer(EchoPredictor())
        scorer._record_from_base(server, 22.0)
        first = scorer._host_vm_records(server)
        assert scorer._host_vm_records(server) is first

    def test_cache_invalidated_by_membership_change(self):
        cluster = cluster_of(2)
        server = cluster.server("s0")
        server.host_vm(make_vm("a"))
        scorer = WhatIfScorer(EchoPredictor())
        before = scorer._host_vm_records(server)
        server.host_vm(make_vm("b", vcpus=3, level=0.9))
        after = scorer._host_vm_records(server)
        assert after is not before
        assert [name for name, _ in after] == ["a", "b"]
        # Scores over the refreshed cache match freshly built records.
        record = scorer._record_from_base(server, 22.0)
        assert record == record_for_host(server, 22.0)
        server.remove_vm("a")
        assert [name for name, _ in scorer._host_vm_records(server)] == ["b"]
