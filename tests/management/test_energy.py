"""Unit tests for the cooling power model and energy accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.management.energy import CoolingModel, EnergyAccount


class TestCop:
    def test_hp_curve_reference_point(self):
        # COP(15) = 0.0068·225 + 0.0008·15 + 0.458 = 2.0.
        model = CoolingModel()
        assert model.cop(15.0) == pytest.approx(2.0, abs=1e-9)

    def test_cop_rises_with_supply_temperature(self):
        model = CoolingModel()
        assert model.cop(25.0) > model.cop(15.0)

    def test_rejects_negative_supply(self):
        with pytest.raises(ConfigurationError):
            CoolingModel().cop(-1.0)


class TestCoolingPower:
    def test_cooling_power_is_heat_over_cop(self):
        model = CoolingModel()
        assert model.cooling_power_w(2000.0, 15.0) == pytest.approx(1000.0, rel=1e-9)

    def test_warmer_supply_cheaper_cooling(self):
        model = CoolingModel()
        assert model.cooling_power_w(1000.0, 25.0) < model.cooling_power_w(1000.0, 18.0)

    def test_total_power(self):
        model = CoolingModel()
        total = model.total_power_w(2000.0, 15.0)
        assert total == pytest.approx(3000.0, rel=1e-9)

    def test_rejects_negative_heat(self):
        with pytest.raises(ConfigurationError):
            CoolingModel().cooling_power_w(-1.0, 20.0)


class TestEnergyAccount:
    def test_accumulates_both_sides(self):
        account = EnergyAccount()
        account.add_interval(it_power_w=2000.0, supply_temperature_c=15.0, duration_s=10.0)
        assert account.it_energy_j == pytest.approx(20_000.0)
        assert account.cooling_energy_j == pytest.approx(10_000.0, rel=1e-9)
        assert account.total_energy_j == pytest.approx(30_000.0, rel=1e-9)

    def test_pue_ratio(self):
        account = EnergyAccount()
        account.add_interval(2000.0, 15.0, 10.0)
        assert account.pue == pytest.approx(1.5, rel=1e-9)

    def test_pue_before_accounting_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount().pue

    def test_kwh_conversion(self):
        assert EnergyAccount().to_kwh(3.6e6) == pytest.approx(1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount().add_interval(100.0, 20.0, -1.0)
