"""Unit tests for prediction-driven placement."""

import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.errors import SchedulingError
from repro.management.hotspot import HotspotDetector
from repro.management.thermal_aware import ThermalAwareScheduler, record_for_host
from tests.conftest import make_server_spec, make_vm


class FakePredictor:
    """Deterministic stand-in scoring hosts by their VM count.

    Implements both ``predict`` and the batched ``predict_many`` the
    scheduler now uses (one call per placement instead of one per host).
    """

    def __init__(self, base=50.0, per_vm=5.0):
        self.base = base
        self.per_vm = per_vm
        self.queries = []
        self.batch_calls = 0

    def predict(self, record):
        self.queries.append(record)
        return self.base + self.per_vm * record.n_vms

    def predict_many(self, records):
        self.batch_calls += 1
        return [self.predict(record) for record in records]


def small_cluster(n=3) -> Cluster:
    cluster = Cluster("ta")
    for i in range(n):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    return cluster


class TestRecordForHost:
    def test_describes_current_vms(self):
        cluster = small_cluster(1)
        server = cluster.server("s0")
        server.host_vm(make_vm("a", vcpus=2))
        record = record_for_host(server, environment_c=23.0)
        assert record.n_vms == 1
        assert record.delta_env_c == 23.0
        assert record.theta_fan_count == server.fans.count

    def test_hypothetical_vm_included(self):
        cluster = small_cluster(1)
        server = cluster.server("s0")
        server.host_vm(make_vm("a"))
        record = record_for_host(server, 22.0, extra_vm=make_vm("incoming"))
        assert record.n_vms == 2
        assert record.metadata["hypothetical"] is True


class TestPlacement:
    def test_picks_coolest_predicted_host(self):
        cluster = small_cluster()
        cluster.server("s0").host_vm(make_vm("x"))
        cluster.server("s0").host_vm(make_vm("y"))
        cluster.server("s1").host_vm(make_vm("z"))
        scheduler = ThermalAwareScheduler(FakePredictor())
        chosen = scheduler.place(make_vm("new"), cluster)
        assert chosen.name == "s2"  # empty host → lowest predicted ψ

    def test_decision_logged(self):
        cluster = small_cluster()
        scheduler = ThermalAwareScheduler(FakePredictor())
        scheduler.place(make_vm("new"), cluster)
        assert len(scheduler.decision_log) == 1
        decision = scheduler.decision_log[0]
        assert decision.vm_name == "new"
        assert decision.predicted_c == pytest.approx(55.0)
        assert decision.degraded is False
        assert scheduler.last_decision is decision

    def test_one_batched_call_per_placement(self):
        cluster = small_cluster(3)
        predictor = FakePredictor()
        scheduler = ThermalAwareScheduler(predictor)
        scheduler.place(make_vm("new"), cluster)
        assert predictor.batch_calls == 1
        assert len(predictor.queries) == 3  # all candidates scored in the batch

    def test_predictions_are_post_placement(self):
        cluster = small_cluster(1)
        predictor = FakePredictor()
        ThermalAwareScheduler(predictor).place(make_vm("new"), cluster)
        # The hypothetical record includes the incoming VM.
        assert predictor.queries[0].n_vms == 1

    def test_skips_hosts_predicted_to_overheat(self):
        cluster = small_cluster(2)
        cluster.server("s0").host_vm(make_vm("a"))  # cooler... but:
        predictor = FakePredictor(base=74.0, per_vm=2.0)
        # s0 with new VM: 74+4=78 (overheats); s1 with new VM: 76 (overheats).
        # With threshold 77: only s1 is acceptable.
        scheduler = ThermalAwareScheduler(
            predictor, detector=HotspotDetector(threshold_c=77.0)
        )
        chosen = scheduler.place(make_vm("new"), cluster)
        assert chosen.name == "s1"

    def test_degrades_gracefully_when_all_overheat(self):
        cluster = small_cluster(2)
        predictor = FakePredictor(base=90.0)
        scheduler = ThermalAwareScheduler(
            predictor, detector=HotspotDetector(threshold_c=75.0)
        )
        chosen = scheduler.place(make_vm("new"), cluster)
        assert chosen.name in {"s0", "s1"}
        # The fallback is loud: the decision is flagged as degraded.
        assert scheduler.last_decision.degraded is True
        assert scheduler.last_decision.server_name == chosen.name

    def test_degraded_flag_clear_when_detector_accepts(self):
        cluster = small_cluster(2)
        scheduler = ThermalAwareScheduler(
            FakePredictor(), detector=HotspotDetector(threshold_c=75.0)
        )
        scheduler.place(make_vm("new"), cluster)
        assert scheduler.last_decision.degraded is False

    def test_last_decision_before_any_placement_raises(self):
        scheduler = ThermalAwareScheduler(FakePredictor())
        with pytest.raises(SchedulingError):
            scheduler.last_decision

    def test_respects_capacity(self):
        cluster = small_cluster(2)
        cluster.server("s0").host_vm(make_vm("big", memory_gb=62.0))
        scheduler = ThermalAwareScheduler(FakePredictor())
        chosen = scheduler.place(make_vm("new", memory_gb=8.0), cluster)
        assert chosen.name == "s1"

    def test_no_feasible_host_rejected(self):
        cluster = small_cluster(1)
        cluster.server("s0").host_vm(make_vm("big", memory_gb=62.0))
        scheduler = ThermalAwareScheduler(FakePredictor())
        with pytest.raises(SchedulingError):
            scheduler.place(make_vm("new", memory_gb=8.0), cluster)

    def test_works_with_trained_predictor(self, trained_predictor):
        cluster = small_cluster()
        cluster.server("s0").host_vm(make_vm("w1", vcpus=8, level=0.9, n_tasks=8))
        cluster.server("s0").host_vm(make_vm("w2", vcpus=8, level=0.9, n_tasks=8))
        scheduler = ThermalAwareScheduler(trained_predictor, environment_c=22.0)
        chosen = scheduler.place(make_vm("new"), cluster)
        # The loaded host must not be chosen.
        assert chosen.name != "s0"
