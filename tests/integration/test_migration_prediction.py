"""Integration: dynamic prediction through a live migration.

This is the scenario the paper argues traditional models cannot handle:
the VM set changes mid-run. The calibrated, retargeted predictor must
track the empirical trace; an unretargeted pre-defined curve must not.
"""

import pytest

from repro.config import PredictionConfig
from repro.core.curve import PredefinedCurve
from repro.core.dynamic import replay_dynamic_prediction
from repro.experiments.scenarios import build_migration_simulation, migration_scenario


@pytest.fixture(scope="module")
def migration_run():
    scenario = migration_scenario(21, migration_time_s=800.0, duration_s=2000.0)
    sim, destination, plan = build_migration_simulation(scenario)
    phi_0 = sim.cluster.server(destination).thermal.cpu_temperature_c
    sim.run(2000.0)
    trace = sim.telemetry.for_server(destination).cpu_temperature
    dest = sim.cluster.server(destination)
    # True stable temperatures from the plant, as oracle targets.
    util_before = sim.telemetry.for_server(destination).utilization.mean(600.0, 790.0)
    util_after = sim.telemetry.for_server(destination).utilization.mean(1600.0, 2000.0)
    psi_before = dest.thermal.steady_state_cpu_temperature(util_before, 22.0)
    psi_after = dest.thermal.steady_state_cpu_temperature(util_after, 22.0)
    lands = 800.0 + plan.duration_s
    return trace, phi_0, psi_before, psi_after, lands


class TestMigrationTracking:
    def test_temperature_rises_after_migration(self, migration_run):
        trace, *_ = migration_run
        assert trace.mean(1700.0, 2000.0) > trace.mean(600.0, 790.0) + 2.0

    def test_retargeted_beats_static_curve(self, migration_run):
        trace, phi_0, psi_before, psi_after, lands = migration_run
        config = PredictionConfig()
        curve = PredefinedCurve(
            phi_0=phi_0, psi_stable=psi_before,
            t_break_s=config.t_break_s, delta=config.curve_delta,
        )
        static = replay_dynamic_prediction(
            trace.times, trace.values, curve, config, calibrated=False
        )
        retargeted = replay_dynamic_prediction(
            trace.times, trace.values, curve, config, calibrated=False,
            retargets=[(lands, psi_after)],
        )
        assert retargeted.mse < static.mse

    def test_calibration_tracks_even_without_retarget(self, migration_run):
        # The paper's headline: runtime calibration absorbs dynamic change.
        trace, phi_0, psi_before, _psi_after, _lands = migration_run
        config = PredictionConfig()
        curve = PredefinedCurve(
            phi_0=phi_0, psi_stable=psi_before,
            t_break_s=config.t_break_s, delta=config.curve_delta,
        )
        calibrated = replay_dynamic_prediction(
            trace.times, trace.values, curve, config, calibrated=True
        )
        uncalibrated = replay_dynamic_prediction(
            trace.times, trace.values, curve, config, calibrated=False
        )
        assert calibrated.mse < uncalibrated.mse / 2.0

    def test_full_stack_calibrated_retargeted_is_best(self, migration_run):
        trace, phi_0, psi_before, psi_after, lands = migration_run
        config = PredictionConfig()
        curve = PredefinedCurve(
            phi_0=phi_0, psi_stable=psi_before,
            t_break_s=config.t_break_s, delta=config.curve_delta,
        )
        variants = {}
        for calibrated in (False, True):
            for retarget in (False, True):
                result = replay_dynamic_prediction(
                    trace.times, trace.values, curve, config,
                    calibrated=calibrated,
                    retargets=[(lands, psi_after)] if retarget else None,
                )
                variants[(calibrated, retarget)] = result.mse
        best = min(variants, key=variants.get)
        assert best[0], "the best variant must use calibration"
        assert variants[(True, True)] < variants[(False, False)]
