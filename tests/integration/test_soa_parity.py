"""Bitwise parity: SoA fleet path vs the per-server object path.

The acceptance gate for the structure-of-arrays fleet core
(:mod:`repro.datacenter.fleetstate`): running the headline fleet
scenarios at 128 servers through ``use_fleet_engine=True`` (which now
rides the :class:`~repro.datacenter.simulation._SoaFleet` fast path —
fleet-state arrays, incremental placement updates, zero per-step
rebuilds) must produce **bit-identical** telemetry to the per-server
object path — every sensor sample, utilization, fan column, forecast,
and final plant state, compared with ``np.array_equal`` (no tolerance).

Also covered: a 256-server fixture exercising mid-run VM arrivals and
live migrations (the placement churn the incremental-update path must
absorb), and forecast parity with the fleet prediction probe riding the
SoA per-step sample fast path.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.scenarios import (
    build_fleet_simulation,
    class_balanced_fleet_scenario,
    cooling_failure_scenario,
    diurnal_fleet_scenario,
    model_drift_scenario,
)
from repro.serving import FleetPredictionProbe, PredictionFleet
from repro.training import (
    FleetTrainingConfig,
    profile_fleet,
    server_class_key,
    train_fleet_registry,
)

HEADLINE_SERVERS = 128

_SERIES = (
    "cpu_temperature",
    "utilization",
    "vm_count",
    "fan_count",
    "fan_speed",
    "predicted_cpu_temperature",
)


def assert_bitwise_parity(soa, obj) -> None:
    """Every telemetry series, the environment feed, the event log, and
    the final plant state must be bitwise equal across the two paths."""
    names = obj.telemetry.server_names
    assert soa.telemetry.server_names == names
    for name in names:
        a = soa.telemetry.for_server(name)
        b = obj.telemetry.for_server(name)
        for series in _SERIES:
            sa, sb = getattr(a, series), getattr(b, series)
            assert np.array_equal(sa.times_array(), sb.times_array()), (
                name,
                series,
            )
            assert np.array_equal(sa.values_array(), sb.values_array()), (
                name,
                series,
            )
    assert np.array_equal(
        soa.telemetry.environment.values_array(),
        obj.telemetry.environment.values_array(),
    )
    assert soa.telemetry.event_log == obj.telemetry.event_log
    for sa, sb in zip(soa.cluster.servers, obj.cluster.servers):
        assert sa.thermal.cpu_temperature_c == sb.thermal.cpu_temperature_c
        assert sa.thermal.case_temperature_c == sb.thermal.case_temperature_c
        assert sa.thermal.time_s == sb.thermal.time_s


def run_pair(scenario, duration_s: float):
    soa = build_fleet_simulation(scenario, use_fleet_engine=True)
    obj = build_fleet_simulation(scenario, use_fleet_engine=False)
    soa.run(duration_s)
    obj.run(duration_s)
    return soa, obj


class TestHeadlineScenarioParity:
    """The three headline scenarios at 128 servers, shortened horizons."""

    def test_diurnal_128(self):
        scenario = diurnal_fleet_scenario(
            n_servers=HEADLINE_SERVERS, duration_s=1200.0
        )
        soa = build_fleet_simulation(scenario, use_fleet_engine=True)
        obj = build_fleet_simulation(scenario, use_fleet_engine=False)
        seen = set()
        soa.add_probe(
            lambda sim, time_s: seen.add(type(sim._fleet).__name__)
        )
        soa.run(300.0)
        obj.run(300.0)
        # The eligible 128-server fleet actually rode the SoA fast path.
        assert seen == {"_SoaFleet"}
        assert_bitwise_parity(soa, obj)

    def test_cooling_failure_128(self):
        scenario = cooling_failure_scenario(
            n_servers=HEADLINE_SERVERS,
            failure_time_s=120.0,
            recovery_time_s=240.0,
            duration_s=1200.0,
        )
        soa, obj = run_pair(scenario, 330.0)
        assert_bitwise_parity(soa, obj)

    def test_model_drift_128(self):
        scenario = model_drift_scenario(
            n_classes=4,
            servers_per_class=HEADLINE_SERVERS // 4,
            duration_s=1200.0,
        )
        soa, obj = run_pair(scenario, 300.0)
        assert_bitwise_parity(soa, obj)


class TestPlacementChurnParity:
    def test_arrivals_and_migrations_256(self):
        """256 servers with mid-run arrivals and live migrations: the
        incremental placement updates must match full rebuilds bit for
        bit through every membership change."""
        base = diurnal_fleet_scenario(n_servers=256, duration_s=600.0)
        # Migrate one VM off each of four sources; land four arrivals.
        migrations = tuple(
            (60.0 + 30.0 * k, base.vm_specs[k][0].name, base.server_specs[k + 8].name)
            for k in range(4)
        )
        arrivals = tuple(
            (90.0 + 45.0 * k, base.server_specs[200 + k].name, vm)
            for k, vm in enumerate(
                dataclasses.replace(spec, name=f"arrival-{i}")
                for i, spec in enumerate(
                    base.vm_specs[0][:2] + base.vm_specs[1][:2]
                )
            )
        )
        scenario = dataclasses.replace(
            base, migrations=migrations, arrivals=arrivals
        )
        soa, obj = run_pair(scenario, 400.0)
        for k in range(4):
            vm_name = base.vm_specs[k][0].name
            destination = base.server_specs[k + 8].name
            assert vm_name in soa.cluster.server(destination).vms
            assert vm_name in obj.cluster.server(destination).vms
        assert_bitwise_parity(soa, obj)


class TestForecastParity:
    @pytest.fixture(scope="class")
    def scenario(self):
        return class_balanced_fleet_scenario(
            n_classes=3, servers_per_class=3, seed=43_500, duration_s=700.0
        )

    @pytest.fixture(scope="class")
    def registry(self, scenario):
        return train_fleet_registry(
            profile_fleet(scenario),
            FleetTrainingConfig(
                n_splits=3,
                c_grid=(8.0, 64.0),
                gamma_grid=(0.125,),
                epsilon_grid=(0.125,),
                min_class_records=3,
            ),
        ).registry

    def test_probe_forecasts_bitwise_equal(self, scenario, registry):
        """The probe's SoA per-step fast path (bulk fleet samples, no
        per-server frozenset churn) forecasts bit-identically to the
        per-server observation loop."""
        fleets = []
        sims = []
        for use_fleet in (True, False):
            sim = build_fleet_simulation(scenario, use_fleet_engine=use_fleet)
            fleet = PredictionFleet(registry)
            probe = FleetPredictionProbe(
                fleet, key_fn=lambda server: server_class_key(server.spec)
            )
            probe.attach(sim)
            sim.run(400.0)
            fleets.append(fleet)
            sims.append(sim)
        soa, obj = sims
        assert_bitwise_parity(soa, obj)
        assert np.array_equal(fleets[0]._gamma, fleets[1]._gamma)
        assert np.array_equal(fleets[0]._psi, fleets[1]._psi)
