"""End-to-end integration: the full paper workflow on reduced scale.

Simulate profiling experiments → build Eq. (2) records → grid-search +
train the SVR → predict held-out cases → drive dynamic prediction on a
fresh trace. Everything passes through the public API only.
"""

import pytest

from repro import (
    PredefinedCurve,
    PredictionConfig,
    RngFactory,
    evaluate_stable_predictor,
    random_scenarios,
    replay_dynamic_prediction,
    run_experiment,
    train_stable_predictor,
)
from repro.experiments.dataset import RecordDataset


@pytest.fixture(scope="module")
def workflow():
    scenarios = random_scenarios(60, base_seed=55_000, n_vms_range=(2, 10),
                                 duration_s=1000.0)
    results = [run_experiment(s) for s in scenarios]
    dataset = RecordDataset([r.record for r in results])
    train, test = dataset.split(0.8, rng=RngFactory(1).stream("split"))
    report = train_stable_predictor(
        train.records,
        n_splits=5,
        c_grid=(64.0, 512.0),
        gamma_grid=(0.02, 0.1),
        epsilon_grid=(0.125,),
        rng=RngFactory(1).stream("cv"),
    )
    return results, train, test, report


class TestStableWorkflow:
    def test_test_set_mse_within_loose_band(self, workflow):
        _results, _train, test, report = workflow
        metrics = evaluate_stable_predictor(report.predictor, test.records)
        # Reduced scale (48 training records, 2-point grid): allow a loose
        # multiple of the paper's 1.10 headline. The full-scale run
        # (benchmarks/test_fig1a...) asserts the paper band itself.
        assert metrics["mse"] < 8.0

    def test_predictions_track_actuals(self, workflow):
        _results, _train, test, report = workflow
        metrics = evaluate_stable_predictor(report.predictor, test.records)
        assert metrics["r2"] > 0.9

    def test_grid_search_explored_grid(self, workflow):
        *_rest, report = workflow
        assert len(report.grid.trials) == 4

    def test_dataset_round_trip_preserves_learning(self, workflow, tmp_path):
        _results, train, test, report = workflow
        path = tmp_path / "train.json"
        train.save_json(path)
        restored = RecordDataset.load_json(path)
        report2 = train_stable_predictor(
            restored.records,
            n_splits=5,
            c_grid=(report.predictor.c,),
            gamma_grid=(report.predictor.gamma,),
            epsilon_grid=(report.predictor.epsilon,),
        )
        a = report.predictor.predict_many(test.records)
        b = report2.predictor.predict_many(test.records)
        assert a == pytest.approx(b, abs=1e-6)


class TestDynamicWorkflow:
    def test_dynamic_prediction_on_fresh_trace(self, workflow):
        results, _train, _test, report = workflow
        result = results[0]
        record = result.record
        psi_hat = report.predictor.predict(record)
        config = PredictionConfig()
        curve = PredefinedCurve(
            phi_0=result.phi_0,
            psi_stable=psi_hat,
            t_break_s=config.t_break_s,
            delta=config.curve_delta,
        )
        calibrated = replay_dynamic_prediction(
            result.trace.times, result.trace.values, curve, config
        )
        uncalibrated = replay_dynamic_prediction(
            result.trace.times, result.trace.values, curve, config, calibrated=False
        )
        assert calibrated.mse < uncalibrated.mse + 1e-9
        assert calibrated.mse < 5.0

    def test_dynamic_mse_across_several_traces(self, workflow):
        results, _train, _test, report = workflow
        config = PredictionConfig()
        wins = 0
        for result in results[:8]:
            psi_hat = report.predictor.predict(result.record)
            curve = PredefinedCurve(
                phi_0=result.phi_0,
                psi_stable=psi_hat,
                t_break_s=config.t_break_s,
                delta=config.curve_delta,
            )
            cal = replay_dynamic_prediction(
                result.trace.times, result.trace.values, curve, config
            )
            uncal = replay_dynamic_prediction(
                result.trace.times, result.trace.values, curve, config,
                calibrated=False,
            )
            if cal.mse <= uncal.mse:
                wins += 1
        # Calibration should win on a clear majority of traces.
        assert wins >= 6
