"""Integration: the thermal-management extension end to end.

Uses a trained predictor to drive thermal-aware placement on a cluster
and checks that it reduces peak temperature versus naive packing.
"""

import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.scheduler import FirstFitScheduler
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.management.energy import CoolingModel, EnergyAccount
from repro.management.hotspot import HotspotDetector
from repro.management.thermal_aware import ThermalAwareScheduler
from repro.rng import RngFactory
from repro.thermal.environment import ConstantEnvironment
from tests.conftest import make_server_spec, make_vm


def build_cluster() -> Cluster:
    cluster = Cluster("mgmt")
    for i in range(4):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    return cluster


def arrival_stream(n=12):
    return [make_vm(f"vm-{i}", vcpus=4, memory_gb=4.0, level=0.9, n_tasks=4) for i in range(n)]


def run_placement(scheduler, vms):
    cluster = build_cluster()
    sim = DatacenterSimulation(
        cluster=cluster,
        environment=ConstantEnvironment(22.0),
        rng=RngFactory(5),
    )
    sim.equalize_temperatures()
    for vm in vms:
        scheduler.place(vm, cluster).host_vm(vm)
    sim.run(1500.0)
    return cluster, sim


class TestThermalAwarePlacement:
    def test_lower_peak_temperature_than_first_fit(self, trained_predictor):
        naive_cluster, _ = run_placement(FirstFitScheduler(), arrival_stream())
        aware_cluster, _ = run_placement(
            ThermalAwareScheduler(trained_predictor, environment_c=22.0),
            arrival_stream(),
        )
        assert (
            aware_cluster.peak_cpu_temperature_c()
            < naive_cluster.peak_cpu_temperature_c() - 2.0
        )

    def test_smaller_temperature_spread(self, trained_predictor):
        naive_cluster, _ = run_placement(FirstFitScheduler(), arrival_stream())
        aware_cluster, _ = run_placement(
            ThermalAwareScheduler(trained_predictor, environment_c=22.0),
            arrival_stream(),
        )
        assert (
            aware_cluster.temperature_spread_c()
            < naive_cluster.temperature_spread_c()
        )

    def test_fewer_hotspots(self, trained_predictor):
        # Threshold sits between the balanced level (~72 °C here) and the
        # packed peak (~85+ °C): spreading eliminates threshold crossings.
        detector = HotspotDetector(threshold_c=78.0)
        naive_cluster, _ = run_placement(FirstFitScheduler(), arrival_stream())
        aware_cluster, _ = run_placement(
            ThermalAwareScheduler(trained_predictor, environment_c=22.0,
                                  detector=detector),
            arrival_stream(),
        )
        naive_spots = detector.detect(
            {s.name: s.thermal.cpu_temperature_c for s in naive_cluster.servers}
        )
        aware_spots = detector.detect(
            {s.name: s.thermal.cpu_temperature_c for s in aware_cluster.servers}
        )
        assert len(aware_spots) <= len(naive_spots)


class TestEnergyAccounting:
    def test_account_integrates_over_run(self, trained_predictor):
        cluster, sim = run_placement(
            ThermalAwareScheduler(trained_predictor, environment_c=22.0),
            arrival_stream(6),
        )
        account = EnergyAccount(cooling=CoolingModel())
        for server in cluster.servers:
            bundle = sim.telemetry.for_server(server.name)
            mean_util = bundle.utilization.mean()
            power = server.thermal.power_model.power(mean_util)
            account.add_interval(power, supply_temperature_c=15.0, duration_s=1500.0)
        assert account.it_energy_j > 0
        assert account.cooling_energy_j > 0
        assert 1.0 < account.pue < 2.5
