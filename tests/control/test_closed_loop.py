"""Integration: the closed loop end to end on the stress scenarios.

The PR's headline acceptance: on the cooling-failure scenario the
managed run ends with **zero sustained hotspots** while the identical
no-control baseline reports several — the `fleet-manage` pipeline
(serve → control) actually closes the loop the paper motivates.
"""

import numpy as np
import pytest

from repro.control import (
    ControlPlaneConfig,
    EnergyAwareConsolidationPolicy,
    ProactiveForecastPolicy,
    ReactiveEvictionPolicy,
    run_closed_loop,
)
from repro.experiments.scenarios import (
    cooling_failure_scenario,
    flash_crowd_scenario,
    thermal_cascade_scenario,
)
from repro.serving import ModelRegistry


@pytest.fixture(scope="module")
def registry(trained_predictor):
    reg = ModelRegistry()
    reg.register("default", trained_predictor)
    return reg


@pytest.fixture(scope="module")
def cooling_failure_runs(registry):
    """One baseline + one managed run of the same cooling failure."""
    scenario = cooling_failure_scenario(
        n_servers=12, failure_time_s=600.0, duration_s=3000.0
    )
    baseline = run_closed_loop(scenario, registry, policy=None)
    managed = run_closed_loop(
        scenario, registry, policy=ProactiveForecastPolicy(margin_c=2.0)
    )
    return baseline, managed


class TestCoolingFailureAcceptance:
    def test_baseline_sustains_hotspots(self, cooling_failure_runs):
        baseline, _ = cooling_failure_runs
        assert len(baseline.ledger.sustained_hotspots()) > 0
        assert baseline.ledger.moves_issued == 0

    def test_control_clears_all_sustained_hotspots(self, cooling_failure_runs):
        baseline, managed = cooling_failure_runs
        assert managed.ledger.sustained_hotspots() == []
        assert managed.ledger.moves_issued > 0
        # And the final measured temperatures actually sit below threshold.
        threshold = managed.plane.detector.threshold_c
        assert max(managed.measured_temperatures().values()) < threshold

    def test_control_acts_through_migration_events(self, cooling_failure_runs):
        _, managed = cooling_failure_runs
        log = managed.simulation.telemetry.event_log
        starts = [line for _, line in log if "migration" in line and "started" in line]
        completes = [
            line for _, line in log if "migration" in line and "completed" in line
        ]
        assert len(starts) == managed.ledger.moves_issued
        assert len(completes) == managed.ledger.moves_issued

    def test_ledger_accounts_energy_and_forecast_error(self, cooling_failure_runs):
        baseline, managed = cooling_failure_runs
        for result in (baseline, managed):
            summary = result.ledger.summary()
            assert summary["pue"] > 1.0
            assert summary["it_energy_kwh"] > 0.0
            assert np.isfinite(summary["mean_forecast_error_c"])
        # Shedding load off throttling-hot servers must not cost energy.
        assert (
            managed.ledger.account.total_energy_j
            <= baseline.ledger.account.total_energy_j * 1.02
        )

    def test_proactive_peaks_below_reactive(self, registry):
        """The paper's payoff: forecast-driven action keeps peak measured
        hotspots at/below what measured-only reaction allows."""
        scenario = cooling_failure_scenario(
            n_servers=12, failure_time_s=600.0, duration_s=2400.0
        )
        reactive = run_closed_loop(
            scenario, registry, policy=ReactiveEvictionPolicy()
        )
        proactive = run_closed_loop(
            scenario, registry, policy=ProactiveForecastPolicy(margin_c=2.0)
        )
        r_peak = reactive.ledger.summary()["peak_measured_hotspots"]
        p_peak = proactive.ledger.summary()["peak_measured_hotspots"]
        assert p_peak <= r_peak
        assert proactive.ledger.sustained_hotspots() == []
        assert reactive.ledger.sustained_hotspots() == []


class TestEnginePathParity:
    def test_managed_run_identical_on_both_engine_paths(self, registry):
        """The control loop composes with both simulation paths: the
        fleet-engine and per-server reference runs must issue the same
        migrations, fill identical ledgers, and land on bit-equal
        temperatures (the repo's parity discipline, extended one layer)."""
        scenario = cooling_failure_scenario(
            n_servers=10, failure_time_s=500.0, duration_s=2000.0
        )
        results = {
            use_fleet: run_closed_loop(
                scenario,
                registry,
                policy=ProactiveForecastPolicy(margin_c=2.0),
                use_fleet_engine=use_fleet,
            )
            for use_fleet in (True, False)
        }

        def ledger_rows(result):
            return [
                (
                    record.time_s,
                    record.moves_issued,
                    record.measured_hotspot_names,
                    record.it_power_w,
                )
                for record in result.ledger.records
            ]

        assert results[True].ledger.moves_issued > 0
        assert ledger_rows(results[True]) == ledger_rows(results[False])
        fleet_temps = results[True].measured_temperatures()
        reference_temps = results[False].measured_temperatures()
        assert fleet_temps == reference_temps  # bit-equal


class TestOtherStressScenarios:
    def test_thermal_cascade_cleared(self, registry):
        scenario = thermal_cascade_scenario(n_servers=12, duration_s=3000.0)
        baseline = run_closed_loop(scenario, registry, policy=None)
        managed = run_closed_loop(
            scenario, registry, policy=ProactiveForecastPolicy(margin_c=2.0)
        )
        assert len(baseline.ledger.sustained_hotspots()) > 0
        assert managed.ledger.sustained_hotspots() == []

    def test_flash_crowd_cleared(self, registry):
        scenario = flash_crowd_scenario(
            n_servers=12, spike_time_s=600.0, duration_s=3000.0
        )
        baseline = run_closed_loop(scenario, registry, policy=None)
        managed = run_closed_loop(
            scenario, registry, policy=ProactiveForecastPolicy(margin_c=2.0)
        )
        assert len(baseline.ledger.sustained_hotspots()) > 0
        assert managed.ledger.sustained_hotspots() == []

    def test_consolidation_parks_servers_without_hotspots(self, registry):
        # A calm fleet (spike only at the very end): consolidation drains
        # lightly loaded hosts so they could be parked, never making heat.
        scenario = flash_crowd_scenario(
            n_servers=12, spike_time_s=2900.0, duration_s=3000.0
        )
        managed = run_closed_loop(
            scenario,
            registry,
            policy=EnergyAwareConsolidationPolicy(),
            config=ControlPlaneConfig(max_moves_per_interval=2),
        )
        empty = sum(
            1 for s in managed.simulation.cluster.servers if not s.vms
        )
        assert managed.ledger.moves_issued > 0
        assert empty > 0
        assert managed.ledger.sustained_hotspots() == []
