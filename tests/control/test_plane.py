"""Unit tests for the ControlPlane act stage and its anti-thrash guards."""

import numpy as np
import pytest

from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.control.policies import ReactiveEvictionPolicy
from repro.datacenter.cluster import Cluster
from repro.datacenter.migration import MigrationStartEvent
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import ConfigurationError
from repro.management.hotspot import HotspotDetector
from repro.management.whatif import WhatIfScorer
from repro.rng import RngFactory
from repro.serving import ModelRegistry, PredictionFleet
from repro.thermal.environment import ConstantEnvironment
from tests.conftest import make_server_spec, make_vm


class EchoPredictor:
    def predict_many(self, records):
        return np.array([
            40.0 + 3.0 * sum(vm.vcpus * vm.nominal_utilization for vm in r.vms)
            for r in records
        ])


class EchoEntry:
    def predict_records(self, records):
        return EchoPredictor().predict_many(records)


class EchoRegistry:
    """Registry stand-in: every key resolves to the echo model."""

    def __init__(self):
        self._entry = EchoEntry()

    def resolve(self, key):
        return self._entry


def build_sim(n=4, hot=("s0",), vms_per_hot=3, memory_gb=64.0):
    cluster = Cluster("plane")
    for i in range(n):
        cluster.add_server(
            Server(make_server_spec(name=f"s{i}", memory_gb=memory_gb))
        )
    for name in hot:
        server = cluster.server(name)
        server.thermal.set_temperatures(85.0, 50.0)
        for j in range(vms_per_hot):
            server.host_vm(make_vm(f"{name}-vm{j}", vcpus=2, level=0.8, memory_gb=8.0))
    return DatacenterSimulation(
        cluster=cluster,
        environment=ConstantEnvironment(22.0),
        rng=RngFactory(3),
    )


def build_plane(policy=ReactiveEvictionPolicy(), **config_kwargs):
    fleet = PredictionFleet(EchoRegistry())
    config = ControlPlaneConfig(**config_kwargs)
    return ControlPlane(
        fleet,
        policy=policy,
        detector=HotspotDetector(threshold_c=75.0),
        scorer=WhatIfScorer(EchoPredictor()) if policy is not None else None,
        config=config,
    )


def pending_migrations(sim):
    return [
        event
        for _, _, event in sim.events._heap
        if isinstance(event, MigrationStartEvent)
    ]


class TestActStage:
    def test_issues_migration_events_for_hotspots(self):
        sim = build_sim()
        plane = build_plane()
        plane._on_step(sim, 60.0)
        events = pending_migrations(sim)
        assert len(events) == 1
        assert events[0].plan.source == "s0"
        assert plane.ledger.records[-1].moves_issued == 1

    def test_budget_caps_issued_moves(self):
        sim = build_sim(n=6, hot=("s0", "s1", "s2"))
        plane = build_plane(max_moves_per_interval=1)
        plane._on_step(sim, 60.0)
        row = plane.ledger.records[-1]
        assert row.moves_planned == 3
        assert row.moves_issued == 1
        assert row.moves_deferred == 2

    def test_server_cooldown_blocks_refire(self):
        sim = build_sim(n=4, hot=("s0",), vms_per_hot=3)
        plane = build_plane(server_cooldown_s=180.0)
        plane._on_step(sim, 60.0)
        assert plane.ledger.records[-1].moves_issued == 1
        # Next interval: the source is still hot but resting — the policy
        # sees the cooldown through the view and plans nothing at all.
        plane._on_step(sim, 120.0)
        row = plane.ledger.records[-1]
        assert row.moves_planned == 0
        assert row.moves_issued == 0
        # After the cooldown expires the next eviction may proceed (a
        # different VM: the first one still rests on its own cooldown).
        plane._on_step(sim, 300.0)
        assert plane.ledger.records[-1].moves_issued == 1
        issued_vms = [e.plan.vm_name for e in pending_migrations(sim)]
        assert len(set(issued_vms)) == 2

    def test_vm_cooldown_outlives_server_cooldown(self):
        sim = build_sim()
        plane = build_plane(server_cooldown_s=0.0, vm_cooldown_s=1000.0)
        plane._on_step(sim, 60.0)
        first = pending_migrations(sim)[0].plan.vm_name
        plane._on_step(sim, 120.0)
        second = pending_migrations(sim)
        assert len(second) == 2
        assert second[1].plan.vm_name != first

    def test_in_flight_reservation_blocks_overcommit(self):
        # Destination has room for exactly one 8 GiB VM; two hot sources
        # both want it across intervals. Without reservations the second
        # completion would blow CapacityError mid-simulation.
        sim = build_sim(n=3, hot=("s0", "s1"), vms_per_hot=1, memory_gb=10.0)
        plane = build_plane(server_cooldown_s=0.0)
        plane._on_step(sim, 60.0)
        assert plane.ledger.records[-1].moves_issued == 1
        # Next interval: s1 plans the same destination; the in-flight
        # 8 GiB reservation (migration not yet completed) blocks it.
        plane._on_step(sim, 120.0)
        row = plane.ledger.records[-1]
        assert row.moves_planned == 1
        assert row.moves_issued == 0

    def test_migrating_vm_not_replanned(self):
        sim = build_sim(n=4, hot=("s0",), vms_per_hot=1)
        # 0.1 GB/s link: the 8 GiB migration stays in flight for ~80 s.
        plane = build_plane(
            server_cooldown_s=0.0,
            vm_cooldown_s=0.0,
            bandwidth_gbps=0.1,
            dirty_rate_gbps=0.01,
        )
        plane._on_step(sim, 0.0)
        assert len(pending_migrations(sim)) == 1
        sim.run(1.5)  # fires MigrationStartEvent → VM enters MIGRATING
        plane._on_step(sim, 60.0)
        row = plane.ledger.records[-1]
        assert row.moves_planned == 0
        assert row.moves_issued == 0

    def test_baseline_observes_without_acting(self):
        sim = build_sim(n=4, hot=("s0", "s1"))
        plane = build_plane(policy=None)
        plane._on_step(sim, 60.0)
        row = plane.ledger.records[-1]
        assert row.moves_planned == 0
        assert row.measured_hotspots == 2
        assert row.it_power_w > 0
        assert pending_migrations(sim) == []

    def test_warm_up_intervals_skipped(self):
        sim = build_sim()
        plane = build_plane()
        sim._recording = False
        try:
            plane._on_step(sim, 60.0)
        finally:
            sim._recording = True
        assert plane.ledger.records == []

    def test_policy_without_scorer_rejected(self):
        fleet = PredictionFleet(EchoRegistry())
        with pytest.raises(ConfigurationError):
            ControlPlane(fleet, policy=ReactiveEvictionPolicy())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ControlPlaneConfig(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ControlPlaneConfig(max_moves_per_interval=-1)
        with pytest.raises(ConfigurationError):
            ControlPlaneConfig(server_cooldown_s=-1.0)


class TestPreForecastEdges:
    """The interval probe may fire before any forecast exists — the loop
    must account an (empty) interval rather than crash."""

    def test_tick_with_untracked_fleet_records_empty_interval(self):
        sim = build_sim(n=3, hot=("s0",))
        plane = build_plane()  # fleet tracks nothing: zero forecasts
        plane._on_step(sim, 60.0)
        assert plane.ledger.n_intervals == 1
        record = plane.ledger.records[0]
        assert record.n_tracked == 0
        assert record.forecasts_scored == 0
        assert np.isnan(record.forecast_error_c)
        # Measured detection still works without forecasts.
        assert record.measured_hotspots == 1
        assert record.predicted_hotspots == 0
        assert np.isnan(plane.ledger.windowed_forecast_error_c())

    def test_tick_with_tracked_but_unforecast_servers(self):
        from tests.conftest import make_record

        sim = build_sim(n=3, hot=("s0",))
        plane = build_plane()
        plane.fleet.track(
            ["s0", "s1"],
            [make_record(psi=None), make_record(psi=None, n_vms=5)],
            np.zeros(2),
            np.full(2, 40.0),
        )  # tracked, but predict_ahead never ran: all-NaN forecasts
        plane._on_step(sim, 60.0)
        record = plane.ledger.records[0]
        assert record.n_tracked == 2
        assert record.predicted_hotspots == 0
        assert record.forecasts_scored == 0


class StubLifecycle:
    """Duck-typed sixth stage: records the ticks it was handed."""

    def __init__(self):
        self.ticks = []

    def step(self, sim, time_s, fleet):
        self.ticks.append((time_s, fleet.n_servers))
        return None


class TestLifecycleStage:
    def test_lifecycle_stage_runs_after_account(self):
        sim = build_sim(n=3, hot=("s0",))
        fleet = PredictionFleet(EchoRegistry())
        lifecycle = StubLifecycle()
        plane = ControlPlane(
            fleet,
            detector=HotspotDetector(threshold_c=75.0),
            lifecycle=lifecycle,
        )
        plane._on_step(sim, 60.0)
        assert lifecycle.ticks == [(60.0, 0)]
        assert plane.ledger.n_intervals == 1  # account ran before lifecycle

    def test_no_lifecycle_is_the_default(self):
        plane = build_plane()
        assert plane.lifecycle is None


class TestRoundTrip:
    def test_issued_migration_completes_and_reservation_clears(self):
        sim = build_sim(n=3, hot=("s0",), vms_per_hot=1)
        plane = build_plane(server_cooldown_s=0.0, vm_cooldown_s=0.0)
        plane._on_step(sim, 60.0)
        assert len(plane._in_flight) == 1
        plan = pending_migrations(sim)[0].plan
        sim.run(plan.duration_s + 65.0)
        destination = sim.cluster.server(plan.destination)
        assert plan.vm_name in destination.vms
        plane._on_step(sim, sim.time_s)
        assert plane._in_flight == {}
