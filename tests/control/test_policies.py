"""Unit tests for the mitigation policies (plan stage)."""

import numpy as np
import pytest

from repro.control.policies import (
    ControlView,
    EnergyAwareConsolidationPolicy,
    ProactiveForecastPolicy,
    ReactiveEvictionPolicy,
)
from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.errors import ConfigurationError
from repro.management.hotspot import HotspotDetector
from repro.management.whatif import WhatIfScorer
from repro.serving.fleet import ForecastSnapshot
from tests.conftest import make_server_spec, make_vm


class EchoPredictor:
    """ψ = 40 + 3·Σ(vcpus·util): transparent, monotone in hosted load."""

    def predict_many(self, records):
        return np.array([
            40.0 + 3.0 * sum(vm.vcpus * vm.nominal_utilization for vm in r.vms)
            for r in records
        ])


def snapshot_for(cluster, predicted: dict[str, float]) -> ForecastSnapshot:
    names = tuple(server.name for server in cluster.servers)
    values = np.array([predicted.get(name, 45.0) for name in names])
    return ForecastSnapshot(
        names=names,
        target_times_s=np.full(len(names), 60.0),
        predicted_c=values,
        gamma=np.zeros(len(names)),
        has_forecast=np.ones(len(names), dtype=bool),
    )


def view_for(cluster, measured: dict[str, float], predicted: dict[str, float] | None = None,
             threshold_c: float = 75.0) -> ControlView:
    full_measured = {
        server.name: measured.get(server.name, 45.0)
        for server in cluster.servers
    }
    return ControlView(
        time_s=600.0,
        cluster=cluster,
        snapshot=snapshot_for(cluster, predicted or {}),
        measured_c=full_measured,
        detector=HotspotDetector(threshold_c=threshold_c),
        scorer=WhatIfScorer(EchoPredictor()),
        environment_c=22.0,
    )


def loaded_cluster(n=4, hot=("s0",), vms_per_hot=3) -> Cluster:
    cluster = Cluster("ctl")
    for i in range(n):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    for name in hot:
        for j in range(vms_per_hot):
            cluster.server(name).host_vm(
                make_vm(f"{name}-vm{j}", vcpus=4, level=0.8, n_tasks=2)
            )
    return cluster


class TestReactiveEviction:
    def test_plans_eviction_for_measured_hotspot(self):
        cluster = loaded_cluster()
        view = view_for(cluster, {"s0": 82.0})
        planned = ReactiveEvictionPolicy().plan(view)
        assert len(planned) == 1
        assert planned[0].move.source == "s0"
        assert planned[0].move.destination in {"s1", "s2", "s3"}

    def test_quiet_fleet_plans_nothing(self):
        cluster = loaded_cluster()
        view = view_for(cluster, {"s0": 70.0})
        assert ReactiveEvictionPolicy().plan(view) == []

    def test_ignores_forecast_hotspots(self):
        # Reactive is the no-prediction baseline: a hot *forecast* with a
        # cool sensor does not trigger it.
        cluster = loaded_cluster()
        view = view_for(cluster, {"s0": 70.0}, predicted={"s0": 85.0})
        assert ReactiveEvictionPolicy().plan(view) == []

    def test_destinations_diversified_across_sources(self):
        cluster = loaded_cluster(n=4, hot=("s0", "s1"), vms_per_hot=2)
        view = view_for(cluster, {"s0": 84.0, "s1": 82.0})
        planned = ReactiveEvictionPolicy().plan(view)
        destinations = [score.move.destination for score in planned]
        assert len(planned) == 2
        assert len(set(destinations)) == 2  # not both onto the coolest

    def test_hotter_source_planned_first(self):
        cluster = loaded_cluster(n=4, hot=("s0", "s1"), vms_per_hot=2)
        view = view_for(cluster, {"s0": 80.0, "s1": 88.0})
        planned = ReactiveEvictionPolicy().plan(view)
        assert [score.move.source for score in planned] == ["s1", "s0"]

    def test_unsafe_destinations_rejected(self):
        # Only one other server, and it would overheat with the VM on it.
        cluster = Cluster("tight")
        cluster.add_server(Server(make_server_spec(name="hot")))
        cluster.add_server(Server(make_server_spec(name="warm")))
        cluster.server("hot").host_vm(make_vm("v", vcpus=8, level=0.9, n_tasks=4))
        for j in range(3):
            cluster.server("warm").host_vm(
                make_vm(f"w{j}", vcpus=4, level=0.9, n_tasks=4)
            )
        view = view_for(cluster, {"hot": 82.0}, threshold_c=75.0)
        assert ReactiveEvictionPolicy().plan(view) == []

    def test_rejects_negative_margin(self):
        with pytest.raises(ConfigurationError):
            ReactiveEvictionPolicy(margin_c=-1.0)


class TestProactiveForecast:
    def test_acts_on_forecast_before_sensor_crosses(self):
        cluster = loaded_cluster()
        view = view_for(cluster, {"s0": 72.0}, predicted={"s0": 76.0})
        planned = ProactiveForecastPolicy(margin_c=2.0).plan(view)
        assert len(planned) == 1
        assert planned[0].move.source == "s0"

    def test_margin_widens_the_trigger(self):
        cluster = loaded_cluster()
        view = view_for(cluster, {"s0": 70.0}, predicted={"s0": 74.0})
        assert ProactiveForecastPolicy(margin_c=0.0).plan(view) == []
        assert len(ProactiveForecastPolicy(margin_c=2.0).plan(view)) == 1

    def test_hottest_forecast_first(self):
        cluster = loaded_cluster(n=5, hot=("s0", "s1"), vms_per_hot=2)
        view = view_for(
            cluster, {}, predicted={"s0": 78.0, "s1": 84.0}
        )
        planned = ProactiveForecastPolicy().plan(view)
        assert [score.move.source for score in planned] == ["s1", "s0"]


class TestConsolidation:
    def light_fleet(self, n=4):
        cluster = Cluster("calm")
        for i in range(n):
            cluster.add_server(Server(make_server_spec(name=f"s{i}")))
            cluster.server(f"s{i}").host_vm(
                make_vm(f"light-{i}", vcpus=2, level=0.2)
            )
        return cluster

    def test_drains_uphill_on_calm_fleet(self):
        cluster = self.light_fleet()
        # s0 coolest → drains; receivers are warmer/later in the order.
        view = view_for(
            cluster, {"s0": 46.0, "s1": 48.0, "s2": 50.0, "s3": 52.0}
        )
        planned = EnergyAwareConsolidationPolicy().plan(view)
        assert planned
        first = planned[0]
        assert first.move.source == "s0"
        assert first.move.destination != "s0"
        sources = {score.move.source for score in planned}
        destinations = {score.move.destination for score in planned}
        assert not sources & destinations  # a server acts once per interval

    def test_defers_while_measured_hotspot_exists(self):
        cluster = self.light_fleet()
        view = view_for(cluster, {"s0": 80.0})
        assert EnergyAwareConsolidationPolicy().plan(view) == []

    def test_defers_while_forecast_near_threshold(self):
        cluster = self.light_fleet()
        view = view_for(cluster, {}, predicted={"s2": 73.0})
        assert EnergyAwareConsolidationPolicy(margin_c=5.0).plan(view) == []

    def test_busy_servers_not_drained(self):
        cluster = self.light_fleet(3)
        for j in range(3):
            cluster.server("s2").host_vm(make_vm(f"extra-{j}", level=0.3))
        view = view_for(cluster, {"s0": 46.0, "s1": 47.0, "s2": 50.0})
        planned = EnergyAwareConsolidationPolicy(max_source_vms=1).plan(view)
        assert all(score.move.source != "s2" for score in planned)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyAwareConsolidationPolicy(max_source_vms=0)
        with pytest.raises(ConfigurationError):
            EnergyAwareConsolidationPolicy(margin_c=-0.5)
