"""Unit tests for control-plane accounting."""

import math

import pytest

from repro.control.ledger import ControlLedger, forecast_error_at
from repro.datacenter.telemetry import TelemetryCollector
from repro.errors import ConfigurationError


def record(ledger, time_s, measured=(), predicted=(), planned=0, issued=0,
           error=float("nan"), scored=0, it_power_w=1000.0):
    return ledger.record_interval(
        time_s=time_s,
        n_tracked=4,
        predicted_hotspot_names=list(predicted),
        measured_hotspot_names=list(measured),
        moves_planned=planned,
        moves_issued=issued,
        moves_deferred=planned - issued,
        forecast_error_c=error,
        forecasts_scored=scored,
        it_power_w=it_power_w,
    )


class TestLedgerRows:
    def test_interval_record_fields(self):
        ledger = ControlLedger(interval_s=60.0)
        row = record(ledger, 60.0, measured=["a"], predicted=["a", "b"],
                     planned=2, issued=1, error=0.5, scored=3)
        assert row.predicted_hotspots == 2
        assert row.measured_hotspots == 1
        assert row.moves_deferred == 1
        assert row.total_power_w == pytest.approx(
            row.it_power_w + row.cooling_power_w
        )
        assert ledger.n_intervals == 1
        assert ledger.moves_issued == 1

    def test_energy_integrates_per_interval(self):
        ledger = ControlLedger(interval_s=60.0, supply_temperature_c=15.0)
        record(ledger, 60.0, it_power_w=1000.0)
        record(ledger, 120.0, it_power_w=2000.0)
        assert ledger.account.it_energy_j == pytest.approx(3000.0 * 60.0)
        cop = ledger.account.cooling.cop(15.0)
        assert ledger.account.cooling_energy_j == pytest.approx(
            3000.0 * 60.0 / cop
        )
        assert ledger.summary()["pue"] == pytest.approx(1.0 + 1.0 / cop)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            ControlLedger(interval_s=0.0)


class TestSustainedHotspots:
    def test_requires_consecutive_intervals(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, measured=["a", "b"])
        record(ledger, 120.0, measured=["a"])
        record(ledger, 180.0, measured=["a", "c"])
        assert ledger.sustained_hotspots(intervals=3) == ["a"]
        assert ledger.sustained_hotspots(intervals=2) == ["a"]
        assert ledger.sustained_hotspots(intervals=1) == ["a", "c"]

    def test_transient_not_sustained(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, measured=["a"])
        record(ledger, 120.0, measured=[])
        record(ledger, 180.0, measured=["a"])
        assert ledger.sustained_hotspots(intervals=3) == []

    def test_too_few_rows_means_nothing_sustained(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, measured=["a"])
        assert ledger.sustained_hotspots(intervals=3) == []

    def test_rejects_bad_window(self):
        ledger = ControlLedger(interval_s=60.0)
        with pytest.raises(ConfigurationError):
            ledger.sustained_hotspots(intervals=0)


class TestSummary:
    def test_summary_aggregates(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, measured=["a", "b"], issued=1, planned=2,
               error=1.0, scored=2)
        record(ledger, 120.0, measured=[], issued=2, planned=2, error=3.0,
               scored=2)
        summary = ledger.summary()
        assert summary["intervals"] == 2.0
        assert summary["moves_issued"] == 3.0
        assert summary["peak_measured_hotspots"] == 2.0
        assert summary["final_measured_hotspots"] == 0.0
        assert summary["mean_forecast_error_c"] == pytest.approx(2.0)

    def test_nan_errors_excluded_from_mean(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, error=float("nan"))
        record(ledger, 120.0, error=4.0, scored=1)
        assert ledger.mean_forecast_error_c() == pytest.approx(4.0)

    def test_empty_ledger_summary(self):
        summary = ControlLedger(interval_s=60.0).summary()
        assert summary["intervals"] == 0.0
        assert math.isnan(summary["mean_forecast_error_c"])
        assert math.isnan(summary["pue"])


class TestWindowedForecastError:
    def test_scores_only_the_trailing_window(self):
        ledger = ControlLedger(interval_s=60.0)
        for i, error in enumerate([9.0, 9.0, 1.0, 2.0, 3.0]):
            record(ledger, 60.0 * (i + 1), error=error, scored=1)
        assert ledger.windowed_forecast_error_c(3) == pytest.approx(2.0)
        # Early rows do not dilute the window; the full mean does see them.
        assert ledger.mean_forecast_error_c() == pytest.approx(4.8)

    def test_window_longer_than_run_uses_all_rows(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, error=2.0, scored=1)
        assert ledger.windowed_forecast_error_c(10) == pytest.approx(2.0)

    def test_nan_rows_skipped_and_all_nan_window_is_nan(self):
        ledger = ControlLedger(interval_s=60.0)
        record(ledger, 60.0, error=5.0, scored=1)
        record(ledger, 120.0)  # unscored interval: NaN error
        record(ledger, 180.0, error=1.0, scored=1)
        assert ledger.windowed_forecast_error_c(2) == pytest.approx(1.0)
        empty = ControlLedger(interval_s=60.0)
        record(empty, 60.0)
        assert math.isnan(empty.windowed_forecast_error_c(3))

    def test_rejects_bad_window(self):
        ledger = ControlLedger(interval_s=60.0)
        with pytest.raises(ConfigurationError):
            ledger.windowed_forecast_error_c(0)


class TestForecastErrorAt:
    def test_scores_matured_forecasts(self):
        telemetry = TelemetryCollector()
        bundle = telemetry.for_server("s0")
        for t in (5.0, 10.0, 15.0, 20.0):
            bundle.cpu_temperature.append(t, 50.0 + t)
        # Forecast recorded at its *target* time 15 s, value 2 °C high.
        bundle.predicted_cpu_temperature.append(15.0, 67.0)
        error, scored = forecast_error_at(telemetry, ["s0"], 20.0)
        assert scored == 1
        assert error == pytest.approx(2.0)

    def test_servers_without_forecasts_skipped(self):
        telemetry = TelemetryCollector()
        bundle = telemetry.for_server("s0")
        bundle.cpu_temperature.append(5.0, 50.0)
        error, scored = forecast_error_at(telemetry, ["s0", "ghost"], 10.0)
        assert scored == 0
        assert math.isnan(error)

    def test_future_forecasts_not_scored(self):
        telemetry = TelemetryCollector()
        bundle = telemetry.for_server("s0")
        bundle.cpu_temperature.append(5.0, 50.0)
        bundle.predicted_cpu_temperature.append(60.0, 55.0)  # target ahead
        error, scored = forecast_error_at(telemetry, ["s0"], 10.0)
        assert scored == 0
        assert math.isnan(error)
