"""Fuzzer-hook invariants for the serving front-end.

Drives the micro-batching front-end with scenario-derived request traces
from the seeded scenario fuzzer and asserts the contracts that must hold
for *every* workload shape, not just the hand-written cases:

* every submitted request is answered exactly once (ticket answered,
  ledger rows conserve batch sizes, request ids unique);
* batched + cached answers are bitwise equal to the naive per-request
  path (cache hits stand in for cold computes without changing a bit);
* no request waits beyond the configured latency budget;
* replaying the same seed replays the same answers and the same ledger.
"""

import numpy as np
import pytest

from repro.core.stable import StableTemperaturePredictor
from repro.scenarios import ScenarioFuzzer
from repro.serving.frontend import (
    FrontendConfig,
    PredictionFrontend,
    serve_naive,
    serve_trace,
)
from repro.serving.registry import ModelRegistry
from repro.serving.traces import ARRIVALS, trace_from_scenario
from tests.conftest import make_record

FUZZ_SEEDS = (0, 7, 13, 21, 34)


@pytest.fixture(scope="module")
def registry():
    records = [
        make_record(psi=35.0 + 2.0 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
        for i in range(12)
    ]
    reg = ModelRegistry()
    reg.register(
        "default",
        StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records),
    )
    return reg


def _fuzz_trace(seed: int):
    scenario = ScenarioFuzzer(vms_per_server=(1, 3)).scenario(seed)
    # Compress the window so arrivals actually contend for batches; mix
    # arrival modes across seeds.
    return trace_from_scenario(
        scenario,
        n_requests=150,
        duration_s=2.0,
        arrival=ARRIVALS[seed % len(ARRIVALS)],
        seed=seed,
    )


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_frontend_invariants_over_fuzzed_traces(registry, seed):
    trace = _fuzz_trace(seed)
    config = FrontendConfig(max_batch=16, max_wait_s=0.03)
    frontend = PredictionFrontend(registry, config)
    tickets = serve_trace(frontend, trace)

    # Answered exactly once, nothing left behind.
    assert len(tickets) == trace.n_requests
    assert all(t.done for t in tickets)
    assert frontend.pending == 0
    ledger = frontend.ledger
    assert ledger.n_requests == trace.n_requests
    assert sorted(r.request_id for r in ledger.requests) == list(
        range(trace.n_requests)
    )
    assert sum(b.size for b in ledger.batches) == trace.n_requests

    # Cache hits are bitwise equal to cold computes: the whole batched,
    # deduped, cached pipeline answers exactly like per-request serving.
    psi_naive, _ = serve_naive(registry, trace)
    psi_frontend = np.array([t.psi_stable_c for t in tickets])
    assert np.array_equal(psi_frontend, psi_naive)

    # The latency budget is honored for every request.
    assert np.all(ledger.queue_waits_s() <= config.max_wait_s + 1e-12)

    # Hot-key skew must make the signature cache actually hit.
    assert ledger.cache_hit_rate > 0.0


@pytest.mark.parametrize("seed", FUZZ_SEEDS[:2])
def test_replay_is_bit_identical(registry, seed):
    def run():
        frontend = PredictionFrontend(
            registry, FrontendConfig(max_batch=16, max_wait_s=0.03)
        )
        tickets = serve_trace(frontend, _fuzz_trace(seed))
        return (
            [t.psi_stable_c for t in tickets],
            frontend.ledger.requests,
            frontend.ledger.batches,
        )

    first_psi, first_requests, first_batches = run()
    second_psi, second_requests, second_batches = run()
    assert first_psi == second_psi
    assert first_requests == second_requests
    assert first_batches == second_batches
