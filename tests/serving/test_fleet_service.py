"""Tests for the fleet prediction service: bit-exact parity with the
scalar predictors, Δ_update semantics, retargeting, hotspot wiring, and
the simulation probe."""

import numpy as np
import pytest

from repro.config import PredictionConfig
from repro.core.curve import PredefinedCurve
from repro.core.dynamic import DynamicTemperaturePredictor
from repro.core.monitor import TemperatureMonitor
from repro.core.stable import StableTemperaturePredictor
from repro.datacenter.cluster import Cluster
from repro.datacenter.migration import migrate_vm
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import ServingError
from repro.management.hotspot import HotspotDetector
from repro.rng import RngFactory
from repro.serving import (
    FleetPredictionProbe,
    ModelRegistry,
    PredictionFleet,
    predicted_vs_actual,
)
from tests.conftest import make_record, make_server_spec, make_vm


@pytest.fixture(scope="module")
def stable():
    records = [
        make_record(psi=40.0 + 2.5 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
        for i in range(12)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


@pytest.fixture(scope="module")
def registry(stable):
    reg = ModelRegistry()
    reg.register("default", stable)
    return reg


def _scalar_arm(stable, config, records, t0, first):
    """Per-server DynamicTemperaturePredictor loop seeded like the fleet."""
    scalars = []
    for i, record in enumerate(records):
        curve = PredefinedCurve(
            phi_0=float(first[i]),
            psi_stable=stable.predict(record),
            t_break_s=config.t_break_s,
            delta=config.curve_delta,
            origin_s=float(t0[i]),
        )
        scalars.append(DynamicTemperaturePredictor(curve, config=config))
    return scalars


class TestFleetParity:
    def test_bitwise_parity_with_scalar_loop(self, stable, registry):
        """Jittered timestamps, calibration, and a mid-run retarget all
        produce bit-identical forecasts vs the per-server predictors."""
        config = PredictionConfig()
        n = 6
        names = [f"s{i}" for i in range(n)]
        records = [make_record(psi=None, n_vms=2 + i) for i in range(n)]
        rng = np.random.default_rng(3)
        t0 = rng.uniform(0.0, 4.0, n)
        first = rng.uniform(35.0, 45.0, n)

        fleet = PredictionFleet(registry, config)
        psi = fleet.track(names, records, t0, first)
        scalars = _scalar_arm(stable, config, records, t0, first)
        assert np.array_equal(
            psi, np.array([s.curve.psi_stable for s in scalars])
        )

        for step in range(1, 120):
            t = t0 + 5.0 * step + rng.uniform(-0.3, 0.3, n)
            v = first + 0.05 * step + rng.normal(0.0, 0.3, n)
            fleet.observe(t, v)
            _, fleet_pred = fleet.predict_ahead(t)
            scalar_pred = []
            for i, s in enumerate(scalars):
                s.observe(float(t[i]), float(v[i]))
                scalar_pred.append(s.predict_ahead(float(t[i])).predicted_c)
            assert np.array_equal(fleet_pred, np.array(scalar_pred)), step
            if step == 60:
                new_records = [make_record(psi=None, n_vms=8, util=0.8)] * 2
                fleet.retarget(names[:2], new_records, t[:2], v[:2])
                for i in range(2):
                    scalars[i].retarget(
                        float(t[i]), float(v[i]), stable.predict(new_records[i])
                    )
        assert np.array_equal(
            fleet.gamma, np.array([s.calibrator.gamma for s in scalars])
        )

    def test_uncalibrated_fleet_keeps_gamma_zero(self, registry):
        fleet = PredictionFleet(registry, calibrated=False)
        fleet.track(["a"], [make_record(psi=None)], np.array([0.0]), np.array([40.0]))
        applied = fleet.observe(np.array([100.0]), np.array([99.0]))
        assert not applied.any()
        assert fleet.gamma[0] == 0.0


class TestObserveSemantics:
    def test_updates_follow_delta_update_grid(self, registry):
        config = PredictionConfig(update_interval_s=15.0)
        fleet = PredictionFleet(registry, config)
        fleet.track(["a"], [make_record(psi=None)], np.array([0.0]), np.array([40.0]))
        assert fleet.observe(np.array([0.0]), np.array([40.0])).all()
        # within the interval: ignored
        assert not fleet.observe(np.array([7.0]), np.array([41.0])).any()
        # at the next grid point: applied
        assert fleet.observe(np.array([15.0]), np.array([41.0])).all()

    def test_subset_observation_via_indices(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(
            ["a", "b"],
            [make_record(psi=None), make_record(psi=None, n_vms=5)],
            np.array([0.0, 0.0]),
            np.array([40.0, 42.0]),
        )
        fleet.observe(np.array([20.0]), np.array([55.0]), indices=[1])
        gamma = fleet.gamma
        assert gamma[0] == 0.0
        assert gamma[1] != 0.0


class TestMembership:
    def test_track_rejects_duplicates(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(["a"], [make_record(psi=None)], np.array([0.0]), np.array([40.0]))
        with pytest.raises(ServingError, match="already tracked"):
            fleet.track(
                ["a"], [make_record(psi=None)], np.array([1.0]), np.array([41.0])
            )

    def test_track_rejects_misaligned_batch(self, registry):
        fleet = PredictionFleet(registry)
        with pytest.raises(ServingError, match="names"):
            fleet.track(
                ["a", "b"], [make_record(psi=None)], np.array([0.0]), np.array([40.0])
            )

    def test_indices_of_untracked_server_raise(self, registry):
        fleet = PredictionFleet(registry)
        with pytest.raises(ServingError, match="not tracked"):
            fleet.indices(["ghost"])

    def test_retarget_rejects_misaligned_batch(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(
            ["a", "b"],
            [make_record(psi=None), make_record(psi=None)],
            np.array([0.0, 0.0]),
            np.array([40.0, 41.0]),
        )
        with pytest.raises(ServingError, match="records"):
            fleet.retarget(
                ["a", "b"], [make_record(psi=None)], np.array([5.0, 5.0]),
                np.array([42.0, 43.0]),
            )
        with pytest.raises(ServingError, match="align"):
            fleet.retarget(
                ["a", "b"],
                [make_record(psi=None), make_record(psi=None)],
                np.array([5.0]),
                np.array([42.0, 43.0]),
            )

    def test_incremental_track_appends(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(["a"], [make_record(psi=None)], np.array([0.0]), np.array([40.0]))
        fleet.track(["b"], [make_record(psi=None)], np.array([5.0]), np.array([41.0]))
        assert fleet.names == ["a", "b"]
        assert list(fleet.indices(["b", "a"])) == [1, 0]


class TestForecastSnapshot:
    def test_snapshot_masks_unforecast_servers(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(
            ["a", "b"],
            [make_record(psi=None), make_record(psi=None, n_vms=6)],
            np.array([0.0, 0.0]),
            np.array([40.0, 55.0]),
        )
        snapshot = fleet.forecast_snapshot()
        assert snapshot.names == ("a", "b")
        assert not snapshot.has_forecast.any()
        assert snapshot.forecasts() == ([], pytest.approx([]))

        fleet.predict_ahead(100.0, indices=[1])
        snapshot = fleet.forecast_snapshot()
        assert snapshot.has_forecast.tolist() == [False, True]
        names, predicted = snapshot.forecasts()
        assert names == ["b"]
        assert predicted[0] == fleet.forecast_all()["b"]

    def test_snapshot_is_decoupled_from_live_state(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(
            ["a"], [make_record(psi=None)], np.array([0.0]), np.array([40.0])
        )
        fleet.predict_ahead(50.0)
        snapshot = fleet.forecast_snapshot()
        before = snapshot.predicted_c.copy()
        fleet.observe(400.0, np.array([60.0]))
        fleet.predict_ahead(400.0)
        assert np.array_equal(snapshot.predicted_c, before)
        assert snapshot.target_times_s[0] == pytest.approx(50.0 + fleet.config.prediction_gap_s)

    def test_snapshot_matches_forecast_all(self, registry):
        fleet = PredictionFleet(registry)
        names = [f"s{i}" for i in range(4)]
        fleet.track(
            names,
            [make_record(psi=None, n_vms=2 + i) for i in range(4)],
            np.zeros(4),
            np.full(4, 42.0),
        )
        fleet.observe(np.full(4, 200.0), np.linspace(45.0, 60.0, 4))
        fleet.predict_ahead(np.full(4, 200.0))
        snapshot = fleet.forecast_snapshot()
        assert dict(zip(snapshot.names, snapshot.predicted_c.tolist())) == (
            fleet.forecast_all()
        )
        assert snapshot.gamma.tolist() == fleet.gamma.tolist()
        assert snapshot.n_servers == 4


class TestEmptyFleetEdges:
    """Zero-server and zero-forecast edges of the snapshot read path.

    The control plane's interval probe can legitimately fire before the
    prediction probe has tracked anything (short intervals, sparse
    sensors) and policies consume whatever the snapshot returns — every
    read API must degrade to empty results, never crash."""

    def test_empty_fleet_snapshot_and_detection(self, registry):
        fleet = PredictionFleet(registry)
        snapshot = fleet.forecast_snapshot()
        assert snapshot.n_servers == 0
        assert snapshot.forecast_names() == []
        names, predicted = snapshot.forecasts()
        assert names == [] and predicted.shape == (0,)
        assert HotspotDetector().detect_fleet(names, predicted) == []
        assert fleet.predicted_hotspots(HotspotDetector()) == []
        assert fleet.forecast_all() == {}
        assert fleet.model_keys == []

    def test_empty_fleet_online_calls_are_noops(self, registry):
        fleet = PredictionFleet(registry)
        assert fleet.observe(0.0, np.empty(0)).shape == (0,)
        targets, predicted = fleet.predict_ahead(0.0)
        assert targets.shape == (0,) and predicted.shape == (0,)
        assert fleet.predict_at(0.0).shape == (0,)
        assert fleet.track([], [], np.empty(0), np.empty(0)).shape == (0,)
        assert fleet.retarget([], [], np.empty(0), np.empty(0)).shape == (0,)

    def test_all_nan_has_forecast_filters_everything(self, registry):
        # Tracked servers with no forecast yet: every row masked out.
        fleet = PredictionFleet(registry)
        fleet.track(
            ["a", "b", "c"],
            [make_record(psi=None, n_vms=2 + i) for i in range(3)],
            np.zeros(3),
            np.full(3, 40.0),
        )
        snapshot = fleet.forecast_snapshot()
        assert not snapshot.has_forecast.any()
        names, predicted = snapshot.forecasts()
        assert names == [] and predicted.shape == (0,)
        assert HotspotDetector().detect_fleet(names, predicted) == []
        assert fleet.predicted_hotspots(HotspotDetector()) == []

    def test_empty_mapping_detection(self):
        detector = HotspotDetector()
        assert detector.detect({}) == []
        assert detector.headroom({}) == {}
        assert detector.headroom_fleet(np.empty(0)).shape == (0,)


class TestHotspotWiring:
    def test_predicted_hotspots_uses_latest_forecasts(self, registry):
        fleet = PredictionFleet(registry)
        fleet.track(
            ["cool", "hot"],
            [make_record(psi=None, n_vms=2), make_record(psi=None, n_vms=10, util=0.9)],
            np.array([0.0, 0.0]),
            np.array([40.0, 70.0]),
        )
        fleet.observe(np.array([650.0, 650.0]), np.array([45.0, 82.0]))
        fleet.predict_ahead(np.array([650.0, 650.0]))
        spots = fleet.predicted_hotspots(HotspotDetector(threshold_c=75.0))
        assert [s.server_name for s in spots] == ["hot"]

    def test_detect_fleet_matches_dict_detect(self):
        detector = HotspotDetector(threshold_c=70.0)
        names = ["a", "b", "c"]
        temps = np.array([70.5, 60.0, 90.0])
        fleet_spots = detector.detect_fleet(names, temps)
        dict_spots = detector.detect(dict(zip(names, temps.tolist())))
        assert [(s.server_name, s.temperature_c) for s in fleet_spots] == [
            (s.server_name, s.temperature_c) for s in dict_spots
        ]

    def test_headroom_fleet(self):
        detector = HotspotDetector(threshold_c=75.0)
        margins = detector.headroom_fleet(np.array([70.0, 80.0]))
        assert margins.tolist() == [5.0, -5.0]


def _build_sim(seed: int = 5):
    cluster = Cluster("c")
    for i in range(3):
        server = Server(make_server_spec(name=f"s{i}"))
        for j in range(2 + i):
            server.host_vm(make_vm(f"vm-{i}-{j}", vcpus=2, level=0.5 + 0.1 * j))
        cluster.add_server(server)
    sim = DatacenterSimulation(cluster=cluster, rng=RngFactory(seed))
    sim.equalize_temperatures()
    migrate_vm(sim, "vm-2-1", "s0", start_time_s=200.0)
    return sim


class TestProbeIntegration:
    def test_probe_matches_temperature_monitor_bitwise(self, stable, registry):
        """The batched probe reproduces TemperatureMonitor's forecasts
        exactly on an identical simulation (same seeds → same sensor
        noise), including the retarget triggered by the migration."""
        sim_monitor = _build_sim()
        monitor = TemperatureMonitor(stable)
        monitor.attach(sim_monitor)
        sim_monitor.run(600.0)

        sim_fleet = _build_sim()
        fleet = PredictionFleet(registry)
        FleetPredictionProbe(fleet).attach(sim_fleet)
        sim_fleet.run(600.0)

        for name in ("s0", "s1", "s2"):
            forecasts = monitor.logs[name].forecasts
            series = sim_fleet.telemetry.for_server(name).predicted_cpu_temperature
            assert [f.target_time_s for f in forecasts] == series.times
            assert [f.predicted_c for f in forecasts] == series.values
        monitor_retargets = sum(len(log.retargets) for log in monitor.logs.values())
        assert len(fleet.retarget_log) == monitor_retargets
        assert monitor_retargets >= 2  # migration source and destination

    def test_predicted_vs_actual_alignment(self, registry):
        sim = _build_sim()
        fleet = PredictionFleet(registry)
        FleetPredictionProbe(fleet).attach(sim)
        sim.run(400.0)
        times, predicted, actual = predicted_vs_actual(sim.telemetry, "s0")
        assert times.shape == predicted.shape == actual.shape
        assert times.size > 0
        # matured forecasts only: targets inside the measured trace
        last_measured = sim.telemetry.for_server("s0").cpu_temperature.times[-1]
        assert times[-1] <= last_measured + 1e-9
        assert float(np.mean((predicted - actual) ** 2)) < 50.0

    def test_probe_server_filter(self, registry):
        sim = _build_sim()
        fleet = PredictionFleet(registry)
        FleetPredictionProbe(fleet, servers=["s1"]).attach(sim)
        sim.run(120.0)
        assert fleet.names == ["s1"]
        assert len(sim.telemetry.for_server("s0").predicted_cpu_temperature) == 0
