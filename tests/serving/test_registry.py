"""Tests for the serving model registry."""

import numpy as np
import pytest

from repro.core.features import FeatureExtractor
from repro.core.stable import StableTemperaturePredictor
from repro.errors import NotFittedError, ServingError
from repro.serving.registry import DEFAULT_KEY, ModelRegistry
from tests.conftest import make_record


@pytest.fixture(scope="module")
def fitted_predictor():
    records = [
        make_record(psi=40.0 + 2.5 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
        for i in range(12)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


class TestRegistration:
    def test_register_and_resolve(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("rack-a", fitted_predictor)
        assert registry.resolve("rack-a") is entry
        assert "rack-a" in registry
        assert len(registry) == 1

    def test_register_snapshots_fitted_components(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("rack-a", fitted_predictor)
        # Snapshots, not references: the live predictor's objects stay
        # outside the registry, but predictions are bit-identical.
        assert entry.scaler is not fitted_predictor.scaler
        assert entry.model is not fitted_predictor.svr
        assert entry.extractor is not fitted_predictor.extractor
        records = [make_record(psi=None, n_vms=k) for k in (2, 4, 7)]
        assert np.array_equal(
            entry.predict_records(records), fitted_predictor.predict_many(records)
        )

    def test_register_dedups_snapshots_by_source(self, fitted_predictor):
        registry = ModelRegistry()
        a = registry.register("rack-a", fitted_predictor)
        b = registry.register_model(
            "rack-b",
            fitted_predictor.svr,
            scaler=fitted_predictor.scaler,
        )
        # Same live source objects -> one shared frozen copy each.
        assert b.scaler is a.scaler
        assert b.model is a.model

    def test_unfitted_predictor_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(NotFittedError):
            registry.register("rack-a", StableTemperaturePredictor())

    def test_duplicate_key_rejected(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        with pytest.raises(ServingError, match="already registered"):
            registry.register("rack-a", fitted_predictor)

    def test_empty_key_rejected(self, fitted_predictor):
        registry = ModelRegistry()
        with pytest.raises(ServingError, match="non-empty"):
            registry.register("", fitted_predictor)


class TestSharedComponents:
    def test_register_model_shares_scaler(self, fitted_predictor):
        registry = ModelRegistry()
        base = registry.register("rack-a", fitted_predictor)
        other = registry.register_model(
            "rack-b",
            fitted_predictor.svr,
            scaler=base.scaler,
            extractor=FeatureExtractor(),
        )
        assert registry.resolve("rack-b").scaler is base.scaler
        assert other.scaler is base.scaler

    def test_alias_shares_whole_entry(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("default", fitted_predictor)
        aliased = registry.alias("rack-c/16-core", "default")
        assert aliased is entry
        assert registry.resolve("rack-c/16-core") is entry

    def test_alias_of_unknown_key_raises(self, fitted_predictor):
        registry = ModelRegistry()
        with pytest.raises(ServingError, match="unknown model key"):
            registry.alias("rack-a", "missing")


class TestLookup:
    def test_unknown_key_without_default_raises(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        with pytest.raises(ServingError, match="no-such-key"):
            registry.resolve("no-such-key")

    def test_unknown_key_error_lists_known_keys(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        with pytest.raises(ServingError, match="rack-a"):
            registry.resolve("missing")

    def test_unknown_key_falls_back_to_default(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register(DEFAULT_KEY, fitted_predictor)
        assert registry.resolve("never-registered") is entry

    def test_keys_sorted(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("zeta", fitted_predictor)
        registry.alias("alpha", "zeta")
        assert registry.keys() == ["alpha", "zeta"]


def _refit_records():
    """A record set that trains a visibly different model."""
    return [
        make_record(psi=70.0 - 1.5 * i, n_vms=2 + (i * 5) % 7, util=0.9 - 0.06 * i)
        for i in range(12)
    ]


class TestMutationHazards:
    def test_refit_after_register_leaves_served_predictions_unchanged(self):
        records = [
            make_record(psi=40.0 + 2.5 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
            for i in range(12)
        ]
        predictor = StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1)
        predictor.fit(records)
        registry = ModelRegistry()
        registry.register("rack-a", predictor)
        probes = [make_record(psi=None, n_vms=k) for k in (2, 5, 9)]
        before = registry.resolve("rack-a").predict_records(probes)

        predictor.fit(_refit_records())  # in-place refit of the live object

        after = registry.resolve("rack-a").predict_records(probes)
        assert np.array_equal(before, after)
        # Sanity: the refit really changed the live predictor.
        assert not np.array_equal(before, predictor.predict_many(probes))

    def test_refit_after_register_model_leaves_entry_unchanged(self, fitted_predictor):
        registry = ModelRegistry()
        svr = fitted_predictor.svr
        entry = registry.register_model(
            "rack-a", svr, scaler=fitted_predictor.scaler
        )
        probes = [make_record(psi=None, n_vms=k) for k in (3, 6)]
        before = entry.predict_records(probes)
        extractor = FeatureExtractor()
        scaler = fitted_predictor.scaler
        x = scaler.transform(extractor.matrix(_refit_records()))
        y = extractor.targets(_refit_records())
        svr.fit(x, y)  # in-place refit of the registered SVR object
        assert np.array_equal(entry.predict_records(probes), before)


class TestSnapshotCacheFreshness:
    def test_refit_then_swap_publishes_the_refit_state(self):
        """The dedup cache must not return a stale snapshot when the
        SAME object is refit in place and then swapped back in."""
        records = [
            make_record(psi=40.0 + 2.5 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
            for i in range(12)
        ]
        predictor = StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1)
        predictor.fit(records)
        registry = ModelRegistry()
        registry.register("rack-a", predictor)
        probes = [make_record(psi=None, n_vms=k) for k in (2, 5, 9)]
        v1_predictions = registry.resolve("rack-a").predict_records(probes)

        predictor.fit(_refit_records())  # in-place refit of the live object
        registry.swap("rack-a", predictor)

        assert registry.current_version("rack-a") == 2
        v2_predictions = registry.resolve("rack-a").predict_records(probes)
        assert np.array_equal(
            v2_predictions, predictor.predict_many(probes)
        ), "swap published a stale snapshot instead of the refit state"
        assert not np.array_equal(v1_predictions, v2_predictions)

    def test_unchanged_source_still_dedups(self, fitted_predictor):
        registry = ModelRegistry()
        a = registry.register("rack-a", fitted_predictor)
        b = registry.register_model(
            "rack-b", fitted_predictor.svr, scaler=fitted_predictor.scaler
        )
        assert b.model is a.model
        assert b.scaler is a.scaler

    def test_throwaway_swap_sources_are_pruned(self, fitted_predictor):
        """A long-running lifecycle swaps a fresh throwaway model every
        round — dead sources must not pile up in the dedup cache."""
        import copy
        import gc

        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        for _ in range(5):
            registry.swap_model("rack-a", copy.deepcopy(fitted_predictor.svr))
        gc.collect()
        registry.register_model(
            "rack-b", fitted_predictor.svr, scaler=fitted_predictor.scaler
        )  # any freeze prunes dead entries
        for ref, _, _ in registry._snapshots.values():
            assert ref() is not None, "cache retained a dead source entry"
        # What remains is the version history's own snapshots plus the
        # (live) fixture components — not one entry per past swap source.
        owned = {
            id(component)
            for versions in registry._models.values()
            for entry in versions
            for component in (entry.extractor, entry.scaler, entry.model)
        }
        assert len(registry._snapshots) <= len(owned) + 3

    def test_deepcopy_rebuilds_cache_on_copied_components(self, fitted_predictor):
        import copy

        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        registry.register_model(
            "rack-b", fitted_predictor.svr, scaler=fitted_predictor.scaler
        )
        registry.alias("rack-c", "rack-a")
        clone = copy.deepcopy(registry)
        entry_a = clone.resolve("rack-a")
        entry_b = clone.resolve("rack-b")
        # Sharing structure survives the copy...
        assert entry_a.scaler is entry_b.scaler
        assert entry_a.model is not registry.resolve("rack-a").model
        assert clone.resolve("rack-c") is entry_a
        # ...the copy's cache owns exactly the copied components (no
        # dangling keys pinned to the originals' ids)...
        owned = {id(c) for e in (entry_a, entry_b) for c in (e.extractor, e.scaler, e.model)}
        assert set(clone._snapshots) == owned
        # ...and copy-owned components share as-is on swap.
        swapped = clone.swap_model("rack-a", entry_a.model)
        assert swapped.model is entry_a.model


class TestSwapAndVersions:
    @pytest.fixture()
    def retrained(self):
        return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(
            _refit_records()
        )

    def test_swap_bumps_version_and_reresolves(self, fitted_predictor, retrained):
        registry = ModelRegistry()
        v1 = registry.register("rack-a", fitted_predictor)
        assert v1.version == 1
        v2 = registry.swap("rack-a", retrained)
        assert v2.version == 2
        assert registry.resolve("rack-a") is v2
        assert registry.current_version("rack-a") == 2
        assert [e.version for e in registry.versions("rack-a")] == [1, 2]

    def test_swap_keeps_shared_scaler_by_default(self, fitted_predictor):
        registry = ModelRegistry()
        v1 = registry.register("rack-a", fitted_predictor)
        v2 = registry.swap_model("rack-a", fitted_predictor.svr)
        assert v2.scaler is v1.scaler
        assert v2.extractor is v1.extractor

    def test_swap_unknown_key_raises(self, retrained):
        registry = ModelRegistry()
        with pytest.raises(ServingError, match="unregistered"):
            registry.swap("rack-a", retrained)

    def test_swap_alias_raises_naming_target(self, fitted_predictor, retrained):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        registry.alias("rack-b", "rack-a")
        with pytest.raises(ServingError, match="rack-a"):
            registry.swap("rack-b", retrained)

    def test_alias_then_swap_follows_new_version(self, fitted_predictor, retrained):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        registry.alias("rack-b", "rack-a")
        v2 = registry.swap("rack-a", retrained)
        assert registry.resolve("rack-b") is v2

    def test_swap_then_alias_sees_current_version(self, fitted_predictor, retrained):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        v2 = registry.swap("rack-a", retrained)
        entry = registry.alias("rack-b", "rack-a")
        assert entry is v2
        assert registry.resolve("rack-b") is v2

    def test_alias_chain_follows_through(self, fitted_predictor, retrained):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        registry.alias("rack-b", "rack-a")
        registry.alias("rack-c", "rack-b")  # alias to an alias
        v2 = registry.swap("rack-a", retrained)
        assert registry.resolve("rack-c") is v2

    def test_superseded_entry_stays_functional_mid_batch(
        self, fitted_predictor, retrained
    ):
        registry = ModelRegistry()
        old = registry.register("rack-a", fitted_predictor)
        probes = [make_record(psi=None, n_vms=k) for k in (2, 5)]
        expected_old = old.predict_records(probes)
        registry.swap("rack-a", retrained)  # "mid-batch": old still in hand
        assert np.array_equal(old.predict_records(probes), expected_old)
        assert registry.resolve("rack-a") is not old
        assert not np.array_equal(
            registry.resolve("rack-a").predict_records(probes), expected_old
        )

    def test_versions_of_unknown_key_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ServingError, match="unknown model key"):
            registry.versions("missing")


class TestEntryPrediction:
    def test_predict_records_matches_predictor(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("default", fitted_predictor)
        records = [make_record(psi=None, n_vms=k) for k in (2, 5, 9)]
        batched = entry.predict_records(records)
        assert batched.shape == (3,)
        expected = fitted_predictor.predict_many(records)
        assert np.array_equal(batched, expected)

    def test_predict_records_empty(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("default", fitted_predictor)
        assert entry.predict_records([]).shape == (0,)
