"""Tests for the serving model registry."""

import numpy as np
import pytest

from repro.core.features import FeatureExtractor
from repro.core.stable import StableTemperaturePredictor
from repro.errors import NotFittedError, ServingError
from repro.serving.registry import DEFAULT_KEY, ModelRegistry
from tests.conftest import make_record


@pytest.fixture(scope="module")
def fitted_predictor():
    records = [
        make_record(psi=40.0 + 2.5 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i)
        for i in range(12)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


class TestRegistration:
    def test_register_and_resolve(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("rack-a", fitted_predictor)
        assert registry.resolve("rack-a") is entry
        assert "rack-a" in registry
        assert len(registry) == 1

    def test_register_captures_fitted_components(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("rack-a", fitted_predictor)
        assert entry.scaler is fitted_predictor.scaler
        assert entry.model is fitted_predictor.svr
        assert entry.extractor is fitted_predictor.extractor

    def test_unfitted_predictor_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(NotFittedError):
            registry.register("rack-a", StableTemperaturePredictor())

    def test_duplicate_key_rejected(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        with pytest.raises(ServingError, match="already registered"):
            registry.register("rack-a", fitted_predictor)

    def test_empty_key_rejected(self, fitted_predictor):
        registry = ModelRegistry()
        with pytest.raises(ServingError, match="non-empty"):
            registry.register("", fitted_predictor)


class TestSharedComponents:
    def test_register_model_shares_scaler(self, fitted_predictor):
        registry = ModelRegistry()
        base = registry.register("rack-a", fitted_predictor)
        other = registry.register_model(
            "rack-b",
            fitted_predictor.svr,
            scaler=base.scaler,
            extractor=FeatureExtractor(),
        )
        assert registry.resolve("rack-b").scaler is base.scaler
        assert other.scaler is base.scaler

    def test_alias_shares_whole_entry(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("default", fitted_predictor)
        aliased = registry.alias("rack-c/16-core", "default")
        assert aliased is entry
        assert registry.resolve("rack-c/16-core") is entry

    def test_alias_of_unknown_key_raises(self, fitted_predictor):
        registry = ModelRegistry()
        with pytest.raises(ServingError, match="unknown model key"):
            registry.alias("rack-a", "missing")


class TestLookup:
    def test_unknown_key_without_default_raises(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        with pytest.raises(ServingError, match="no-such-key"):
            registry.resolve("no-such-key")

    def test_unknown_key_error_lists_known_keys(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("rack-a", fitted_predictor)
        with pytest.raises(ServingError, match="rack-a"):
            registry.resolve("missing")

    def test_unknown_key_falls_back_to_default(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register(DEFAULT_KEY, fitted_predictor)
        assert registry.resolve("never-registered") is entry

    def test_keys_sorted(self, fitted_predictor):
        registry = ModelRegistry()
        registry.register("zeta", fitted_predictor)
        registry.alias("alpha", "zeta")
        assert registry.keys() == ["alpha", "zeta"]


class TestEntryPrediction:
    def test_predict_records_matches_predictor(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("default", fitted_predictor)
        records = [make_record(psi=None, n_vms=k) for k in (2, 5, 9)]
        batched = entry.predict_records(records)
        assert batched.shape == (3,)
        expected = fitted_predictor.predict_many(records)
        assert np.array_equal(batched, expected)

    def test_predict_records_empty(self, fitted_predictor):
        registry = ModelRegistry()
        entry = registry.register("default", fitted_predictor)
        assert entry.predict_records([]).shape == (0,)
