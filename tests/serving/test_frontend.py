"""Tests for the micro-batching request-queue front-end.

Covers the tentpole contracts: latency-budget batching under an injected
virtual clock, the signature-keyed result cache (bitwise hit parity,
generation invalidation, LRU eviction), snapshot-atomic dispatch across
mid-queue swap/promote, answered-exactly-once, and the ledger scorecard.
"""

import numpy as np
import pytest

from repro.core.stable import StableTemperaturePredictor
from repro.errors import ConfigurationError, ServingError
from repro.serving.frontend import (
    FrontendConfig,
    PredictionFrontend,
    ServiceCostModel,
    VirtualClock,
    serve_naive,
    serve_trace,
)
from repro.serving.ledger import BatchRecord, RequestRecord
from repro.serving.registry import ModelRegistry
from repro.serving.traces import RequestTrace, TracedRequest
from tests.conftest import make_record


def _fit(seed: float) -> StableTemperaturePredictor:
    records = [
        make_record(
            psi=35.0 + seed + 2.0 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i
        )
        for i in range(12)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


@pytest.fixture(scope="module")
def predictors():
    return {"default": _fit(0.0), "hot-aisle": _fit(8.0), "retrained": _fit(15.0)}


@pytest.fixture()
def registry(predictors):
    reg = ModelRegistry()
    reg.register("default", predictors["default"])
    reg.register("hot-aisle", predictors["hot-aisle"])
    return reg


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(3.5).now_s == 3.5

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.25) == 1.25
        assert clock.advance_to(4.0) == 4.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="forward"):
            VirtualClock().advance(-0.1)

    def test_advance_to_rejects_rewind(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ConfigurationError, match="rewind"):
            clock.advance_to(9.0)

    def test_rejects_nonfinite_start(self):
        with pytest.raises(ConfigurationError, match="finite"):
            VirtualClock(float("nan"))


class TestConfigValidation:
    def test_max_batch_floor(self):
        with pytest.raises(ConfigurationError, match="max_batch"):
            FrontendConfig(max_batch=0)

    def test_max_wait_floor(self):
        with pytest.raises(ConfigurationError, match="max_wait_s"):
            FrontendConfig(max_wait_s=-1e-3)

    def test_cache_capacity_floor(self):
        with pytest.raises(ConfigurationError, match="cache_capacity"):
            FrontendConfig(cache_capacity=0)

    def test_cost_model_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="dispatch_overhead_s"):
            ServiceCostModel(dispatch_overhead_s=-1.0)

    def test_cost_model_batch_service(self):
        costs = ServiceCostModel(
            dispatch_overhead_s=1.0, compute_per_record_s=0.1, lookup_per_hit_s=0.01
        )
        assert costs.batch_service_s(3, 2) == pytest.approx(1.32)
        with pytest.raises(ConfigurationError, match="counts"):
            costs.batch_service_s(-1, 0)


class TestBatching:
    def test_submit_leaves_ticket_pending(self, registry):
        frontend = PredictionFrontend(registry)
        ticket = frontend.submit("default", make_record(psi=None))
        assert not ticket.done
        assert frontend.pending == 1
        with pytest.raises(ServingError, match="still queued"):
            ticket.psi_stable_c

    def test_flush_answers_with_exact_model_output(self, registry):
        frontend = PredictionFrontend(registry)
        record = make_record(psi=None, n_vms=4)
        ticket = frontend.submit("hot-aisle", record)
        assert frontend.flush() == 1
        expected = registry.resolve("hot-aisle").predict_records([record])[0]
        assert ticket.psi_stable_c == expected
        assert frontend.pending == 0

    def test_full_queue_dispatches_without_poll(self, registry):
        frontend = PredictionFrontend(registry, FrontendConfig(max_batch=4))
        tickets = [
            frontend.submit("default", make_record(psi=None, n_vms=2 + i))
            for i in range(4)
        ]
        assert all(t.done for t in tickets)
        assert frontend.ledger.n_batches == 1
        assert frontend.ledger.batches[0].size == 4

    def test_deadline_dispatch_is_stamped_at_the_deadline(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(max_batch=64, max_wait_s=0.02)
        )
        frontend.clock.advance_to(1.0)
        ticket = frontend.submit("default", make_record(psi=None))
        frontend.clock.advance_to(5.0)  # poll runs much later than the budget
        assert frontend.poll() == 1
        assert ticket.done
        request = frontend.ledger.requests[0]
        assert request.dispatch_s == pytest.approx(1.02)
        assert request.queue_wait_s == pytest.approx(0.02)

    def test_poll_before_deadline_drains_nothing(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(max_batch=64, max_wait_s=0.5)
        )
        frontend.submit("default", make_record(psi=None))
        frontend.clock.advance(0.25)
        assert frontend.poll() == 0
        assert frontend.pending == 1

    def test_deadline_cutoff_excludes_later_arrivals(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(max_batch=64, max_wait_s=0.02)
        )
        first = frontend.submit("default", make_record(psi=None, n_vms=2))
        frontend.clock.advance_to(0.05)  # already past first's deadline
        second = frontend.submit("default", make_record(psi=None, n_vms=3))
        frontend.clock.advance_to(0.10)  # past both deadlines
        assert frontend.poll() == 2
        batches = frontend.ledger.batches
        assert [b.size for b in batches] == [1, 1]
        assert batches[0].dispatch_s == pytest.approx(0.02)
        assert batches[1].dispatch_s == pytest.approx(0.07)
        assert first.done and second.done

    def test_queue_wait_never_exceeds_budget(self, registry):
        config = FrontendConfig(max_batch=8, max_wait_s=0.02)
        frontend = PredictionFrontend(registry, config)
        for i in range(30):
            frontend.clock.advance(0.004)
            frontend.poll()
            frontend.submit("default", make_record(psi=None, n_vms=2 + i % 5))
        frontend.clock.advance(1.0)
        frontend.flush()
        waits = frontend.ledger.queue_waits_s()
        assert waits.shape == (30,)
        assert np.all(waits <= config.max_wait_s + 1e-12)

    def test_flush_chunks_remainder_by_max_batch(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(max_batch=4, max_wait_s=10.0)
        )
        for i in range(7):
            frontend.submit("default", make_record(psi=None, n_vms=2 + i))
        # 7 pending: submit auto-drained one full batch of 4 at the 4th
        # submit, flush takes the remaining 3.
        frontend.flush()
        assert [b.size for b in frontend.ledger.batches] == [4, 3]


class TestBatchParity:
    def test_batched_answers_bit_identical_to_point_calls(self, registry):
        frontend = PredictionFrontend(registry, FrontendConfig(max_batch=16))
        records = [
            make_record(psi=None, n_vms=2 + i % 6, util=0.2 + 0.04 * i)
            for i in range(10)
        ]
        keys = ["default", "hot-aisle"] * 5
        tickets = [frontend.submit(k, r) for k, r in zip(keys, records)]
        frontend.flush()
        answered = np.array([t.psi_stable_c for t in tickets])
        point = np.array(
            [
                registry.resolve(k).predict_records([r])[0]
                for k, r in zip(keys, records)
            ]
        )
        assert np.array_equal(answered, point)

    def test_serve_trace_matches_serve_naive_bitwise(self, registry):
        records = [
            make_record(psi=None, n_vms=2 + i % 4, util=0.25 + 0.05 * (i % 3))
            for i in range(12)
        ]
        trace = RequestTrace(
            name="manual",
            duration_s=1.0,
            requests=tuple(
                TracedRequest(
                    arrival_s=0.05 * i,
                    key="default" if i % 3 else "hot-aisle",
                    record=records[i],
                )
                for i in range(12)
            ),
        )
        frontend = PredictionFrontend(
            registry, FrontendConfig(max_batch=4, max_wait_s=0.08)
        )
        tickets = serve_trace(frontend, trace)
        naive_psi, naive_ledger = serve_naive(registry, trace)
        assert np.array_equal(
            np.array([t.psi_stable_c for t in tickets]), naive_psi
        )
        assert frontend.ledger.n_requests == naive_ledger.n_requests == 12
        # Micro-batching amortizes the dispatch overhead the naive path
        # pays per request — fewer batches, same answers.
        assert frontend.ledger.n_batches < naive_ledger.n_batches


class TestSignatureCache:
    def test_repeat_request_hits_cache_bitwise(self, registry):
        frontend = PredictionFrontend(registry)
        record = make_record(psi=None, n_vms=5)
        cold = frontend.submit("default", record)
        frontend.flush()
        warm = frontend.submit("default", record)
        frontend.flush()
        assert cold.cache_hit is False
        assert warm.cache_hit is True
        assert warm.psi_stable_c == cold.psi_stable_c
        assert frontend.ledger.batches[1].unique_computed == 0

    def test_equal_value_different_object_still_hits(self, registry):
        frontend = PredictionFrontend(registry)
        cold = frontend.submit("default", make_record(psi=None, n_vms=5))
        frontend.flush()
        # A separately constructed record with identical Eq. (2) inputs
        # (different metadata/object identity) shares the signature.
        warm = frontend.submit("default", make_record(psi=55.0, n_vms=5))
        frontend.flush()
        assert warm.cache_hit is True
        assert warm.psi_stable_c == cold.psi_stable_c

    def test_in_batch_duplicates_computed_once(self, registry):
        frontend = PredictionFrontend(registry, FrontendConfig(max_batch=16))
        record = make_record(psi=None, n_vms=3)
        tickets = [frontend.submit("default", record) for _ in range(5)]
        frontend.flush()
        batch = frontend.ledger.batches[0]
        assert batch.size == 5
        assert batch.unique_computed == 1
        assert batch.cache_hits == 4
        values = {t.psi_stable_c for t in tickets}
        assert len(values) == 1
        assert [t.cache_hit for t in tickets] == [False, True, True, True, True]

    def test_same_record_different_model_misses(self, registry):
        frontend = PredictionFrontend(registry)
        record = make_record(psi=None, n_vms=4)
        first = frontend.submit("default", record)
        frontend.flush()
        second = frontend.submit("hot-aisle", record)
        frontend.flush()
        assert second.cache_hit is False
        assert second.psi_stable_c != first.psi_stable_c

    def test_cache_disabled_recomputes_across_batches(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(cache_enabled=False)
        )
        record = make_record(psi=None, n_vms=4)
        cold = frontend.submit("default", record)
        frontend.flush()
        warm = frontend.submit("default", record)
        frontend.flush()
        assert warm.cache_hit is False
        assert warm.psi_stable_c == cold.psi_stable_c  # still deterministic
        assert frontend.cache_size == 0
        assert all(b.unique_computed == 1 for b in frontend.ledger.batches)

    def test_lru_eviction_at_capacity(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(cache_capacity=2)
        )
        records = [make_record(psi=None, n_vms=n) for n in (2, 3, 4)]
        for record in records:
            frontend.submit("default", record)
            frontend.flush()
        assert frontend.cache_size == 2  # n_vms=2 evicted
        evicted = frontend.submit("default", records[0])
        kept = frontend.submit("default", records[2])
        frontend.flush()
        assert evicted.cache_hit is False
        assert kept.cache_hit is True

    def test_lru_touch_refreshes_recency(self, registry):
        frontend = PredictionFrontend(
            registry, FrontendConfig(cache_capacity=2)
        )
        a, b, c = (make_record(psi=None, n_vms=n) for n in (2, 3, 4))
        for record in (a, b):
            frontend.submit("default", record)
            frontend.flush()
        frontend.submit("default", a)  # touch a: b becomes LRU
        frontend.flush()
        frontend.submit("default", c)  # evicts b
        frontend.flush()
        hit_a = frontend.submit("default", a)
        miss_b = frontend.submit("default", b)
        frontend.flush()
        assert hit_a.cache_hit is True
        assert miss_b.cache_hit is False


class TestRegistrySwapAtomicity:
    def test_swap_mid_drain_serves_pinned_snapshot_then_new_version(
        self, registry, predictors
    ):
        record = make_record(psi=None, n_vms=4)
        old_value = registry.resolve("default").predict_records([record])[0]

        def swap_during_drain(batch_index, batch):
            if batch_index == 0:
                registry.swap("default", predictors["retrained"])

        frontend = PredictionFrontend(registry, on_dispatch=swap_during_drain)
        in_flight = frontend.submit("default", record)
        frontend.flush()
        # The in-flight batch was pinned before the swap landed: it
        # completes on the pre-swap snapshot.
        assert in_flight.psi_stable_c == old_value
        assert registry.current_version("default") == 2

        # The next request resolves the new version — and must NOT be
        # served the superseded cached value.
        after = frontend.submit("default", record)
        frontend.flush()
        new_value = registry.resolve("default").predict_records([record])[0]
        assert after.cache_hit is False
        assert after.psi_stable_c == new_value
        assert after.psi_stable_c != old_value

    def test_swap_does_not_split_a_batch_across_versions(
        self, registry, predictors
    ):
        records = [make_record(psi=None, n_vms=2 + i) for i in range(6)]
        old_entry = registry.resolve("default")
        expected = old_entry.predict_records(records)

        def swap_during_drain(batch_index, batch):
            registry.swap("default", predictors["retrained"])

        frontend = PredictionFrontend(
            registry,
            FrontendConfig(max_batch=6),
            on_dispatch=swap_during_drain,
        )
        tickets = [frontend.submit("default", r) for r in records]
        assert np.array_equal(
            np.array([t.psi_stable_c for t in tickets]), expected
        )

    def test_promote_mid_queue_rebinds_alias_for_later_batches(
        self, registry, predictors
    ):
        registry.alias("web", "default")
        record = make_record(psi=None, n_vms=4)
        default_value = registry.resolve("default").predict_records([record])[0]

        def promote_during_drain(batch_index, batch):
            if batch_index == 0:
                registry.promote(
                    "web",
                    predictors["retrained"].svr,
                    scaler=predictors["retrained"].scaler,
                    extractor=predictors["retrained"].extractor,
                )

        frontend = PredictionFrontend(registry, on_dispatch=promote_during_drain)
        in_flight = frontend.submit("web", record)
        frontend.flush()
        assert in_flight.psi_stable_c == default_value  # pre-promote snapshot

        after = frontend.submit("web", record)
        frontend.flush()
        promoted_value = registry.resolve("web").predict_records([record])[0]
        assert after.cache_hit is False  # canonical key moved: new token
        assert after.psi_stable_c == promoted_value
        assert after.psi_stable_c != default_value


class TestInvariants:
    def test_every_request_answered_exactly_once(self, registry):
        frontend = PredictionFrontend(registry, FrontendConfig(max_batch=3))
        tickets = [
            frontend.submit("default", make_record(psi=None, n_vms=2 + i % 4))
            for i in range(10)
        ]
        frontend.flush()
        assert all(t.done for t in tickets)
        assert frontend.ledger.n_requests == 10
        assert sorted(r.request_id for r in frontend.ledger.requests) == list(
            range(10)
        )
        assert sum(b.size for b in frontend.ledger.batches) == 10

    def test_double_resolve_raises(self, registry):
        frontend = PredictionFrontend(registry)
        ticket = frontend.submit("default", make_record(psi=None))
        frontend.flush()
        with pytest.raises(ServingError, match="answered twice"):
            ticket._resolve(0.0, False)

    def test_unknown_key_without_default_raises(self):
        reg = ModelRegistry()
        reg.register("hot-aisle", _fit(8.0))
        frontend = PredictionFrontend(reg)
        frontend.submit("nope", make_record(psi=None))
        with pytest.raises(ServingError, match="unknown model key"):
            frontend.flush()


class TestLedger:
    def test_record_validation(self):
        with pytest.raises(ServingError, match="before its arrival"):
            RequestRecord(
                request_id=0, key="k", arrival_s=1.0, dispatch_s=0.5,
                completion_s=2.0, batch_index=0, batch_size=1, cache_hit=False,
            )
        with pytest.raises(ServingError, match="double-counted"):
            BatchRecord(
                batch_index=0, dispatch_s=0.0, size=3,
                unique_computed=1, cache_hits=1, service_s=0.01,
            )

    def test_summary_scorecard(self, registry):
        costs = ServiceCostModel(
            dispatch_overhead_s=2e-3, compute_per_record_s=2.5e-4,
            lookup_per_hit_s=1e-5,
        )
        frontend = PredictionFrontend(
            registry,
            FrontendConfig(max_batch=4, max_wait_s=0.02),
            cost_model=costs,
        )
        record = make_record(psi=None, n_vms=3)
        for _ in range(8):
            frontend.submit("default", record)
        frontend.flush()
        summary = frontend.ledger.summary()
        assert summary["n_requests"] == 8.0
        assert summary["n_batches"] == 2.0
        assert summary["mean_batch_size"] == 4.0
        assert summary["unique_computed"] == 1.0
        assert summary["cache_hit_rate"] == pytest.approx(7 / 8)
        assert summary["p99_latency_s"] >= summary["p50_latency_s"] > 0.0
        assert frontend.ledger.percentile_latency_s(100.0) == pytest.approx(
            summary["max_latency_s"]
        )

    def test_empty_ledger_summary_and_percentile(self, registry):
        frontend = PredictionFrontend(registry)
        assert frontend.ledger.summary()["n_requests"] == 0.0
        with pytest.raises(ServingError, match="no requests"):
            frontend.ledger.percentile_latency_s(50.0)
        with pytest.raises(ServingError, match="percentile"):
            frontend.submit("default", make_record(psi=None))
            frontend.flush()
            frontend.ledger.percentile_latency_s(101.0)
