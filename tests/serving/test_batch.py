"""Tests for cross-model batched inference: grouping + bit-exact parity."""

import numpy as np
import pytest

from repro.core.stable import StableTemperaturePredictor
from repro.errors import ServingError
from repro.serving.batch import PredictionRequest, predict_batch
from repro.serving.registry import ModelRegistry
from tests.conftest import make_record


def _fit(seed: float) -> StableTemperaturePredictor:
    records = [
        make_record(
            psi=35.0 + seed + 2.0 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i
        )
        for i in range(12)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register("default", _fit(0.0))
    reg.register("hot-aisle", _fit(8.0))
    return reg


class TestBatchParity:
    def test_single_model_batch_bit_identical_to_loop(self, registry):
        records = [make_record(psi=None, n_vms=2 + k % 7) for k in range(20)]
        requests = [PredictionRequest("default", r) for r in records]
        batched = predict_batch(registry, requests)
        entry = registry.resolve("default")
        looped = np.array([entry.predict_records([r])[0] for r in records])
        assert np.array_equal(batched, looped)

    def test_cross_model_batch_bit_identical_to_loop(self, registry):
        keys = ["default", "hot-aisle"] * 8
        records = [
            make_record(psi=None, n_vms=2 + k % 5, util=0.25 + 0.03 * k)
            for k in range(16)
        ]
        requests = [PredictionRequest(k, r) for k, r in zip(keys, records)]
        batched = predict_batch(registry, requests)
        looped = np.array(
            [
                registry.resolve(k).predict_records([r])[0]
                for k, r in zip(keys, records)
            ]
        )
        assert np.array_equal(batched, looped)

    def test_results_indexed_like_requests(self, registry):
        records = [make_record(psi=None, n_vms=k) for k in (2, 8, 3, 11)]
        keys = ["hot-aisle", "default", "hot-aisle", "default"]
        requests = [PredictionRequest(k, r) for k, r in zip(keys, records)]
        forward = predict_batch(registry, requests)
        reversed_out = predict_batch(registry, requests[::-1])
        assert np.array_equal(forward, reversed_out[::-1])

    def test_alias_and_fallback_group_with_their_entry(self, registry):
        record = make_record(psi=None, n_vms=4)
        direct = predict_batch(registry, [PredictionRequest("default", record)])
        fallback = predict_batch(
            registry, [PredictionRequest("unknown-class", record)]
        )
        assert np.array_equal(direct, fallback)


class TestSingleRequestFastPath:
    def test_n1_bit_identical_to_grouped_path(self, registry):
        """The n=1 short-circuit must answer exactly like a 2-request
        batch containing the same record (batch-composition parity)."""
        record = make_record(psi=None, n_vms=6, util=0.4)
        fast = predict_batch(registry, [PredictionRequest("default", record)])
        grouped = predict_batch(
            registry,
            [
                PredictionRequest("default", record),
                PredictionRequest("default", make_record(psi=None, n_vms=2)),
            ],
        )
        assert fast.shape == (1,)
        assert fast[0] == grouped[0]

    def test_n1_bit_identical_to_scalar_predict(self, registry):
        record = make_record(psi=None, n_vms=4, util=0.3)
        fast = predict_batch(registry, [PredictionRequest("hot-aisle", record)])
        entry = registry.resolve("hot-aisle")
        assert fast[0] == entry.predict_records([record])[0]

    def test_n1_alias_fallback_still_applies(self, registry):
        record = make_record(psi=None, n_vms=3)
        direct = predict_batch(registry, [PredictionRequest("default", record)])
        fallback = predict_batch(
            registry, [PredictionRequest("never-registered", record)]
        )
        assert np.array_equal(direct, fallback)

    def test_pad_scratch_does_not_leak_into_pickles(self, registry):
        """The single-row pad buffer is a perf cache: pickle bytes (and
        hence the registry's snapshot fingerprints) must be identical
        before and after a single-row predict populates it."""
        import pickle

        predictor = _fit(3.0)
        before = pickle.dumps(predictor)
        predictor.predict(make_record(psi=None, n_vms=4))
        after = pickle.dumps(predictor)
        assert before == after

    def test_pad_scratch_reuse_is_bit_stable_across_calls(self, registry):
        entry = registry.resolve("default")
        records = [make_record(psi=None, n_vms=2 + k % 5) for k in range(8)]
        first = [entry.predict_records([r])[0] for r in records]
        second = [entry.predict_records([r])[0] for r in reversed(records)]
        assert first == second[::-1]


class TestBatchEdges:
    def test_empty_batch(self, registry):
        assert predict_batch(registry, []).shape == (0,)

    def test_unknown_key_without_default_raises(self):
        empty = ModelRegistry()
        with pytest.raises(ServingError, match="unknown model key"):
            predict_batch(empty, [PredictionRequest("x", make_record())])

    def test_unknown_key_without_default_raises_on_grouped_path(self):
        empty = ModelRegistry()
        with pytest.raises(ServingError, match="unknown model key"):
            predict_batch(
                empty, [PredictionRequest("x", make_record()) for _ in range(2)]
            )
