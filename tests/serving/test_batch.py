"""Tests for cross-model batched inference: grouping + bit-exact parity."""

import numpy as np
import pytest

from repro.core.stable import StableTemperaturePredictor
from repro.errors import ServingError
from repro.serving.batch import PredictionRequest, predict_batch
from repro.serving.registry import ModelRegistry
from tests.conftest import make_record


def _fit(seed: float) -> StableTemperaturePredictor:
    records = [
        make_record(
            psi=35.0 + seed + 2.0 * i, n_vms=2 + i % 6, util=0.2 + 0.05 * i
        )
        for i in range(12)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register("default", _fit(0.0))
    reg.register("hot-aisle", _fit(8.0))
    return reg


class TestBatchParity:
    def test_single_model_batch_bit_identical_to_loop(self, registry):
        records = [make_record(psi=None, n_vms=2 + k % 7) for k in range(20)]
        requests = [PredictionRequest("default", r) for r in records]
        batched = predict_batch(registry, requests)
        entry = registry.resolve("default")
        looped = np.array([entry.predict_records([r])[0] for r in records])
        assert np.array_equal(batched, looped)

    def test_cross_model_batch_bit_identical_to_loop(self, registry):
        keys = ["default", "hot-aisle"] * 8
        records = [
            make_record(psi=None, n_vms=2 + k % 5, util=0.25 + 0.03 * k)
            for k in range(16)
        ]
        requests = [PredictionRequest(k, r) for k, r in zip(keys, records)]
        batched = predict_batch(registry, requests)
        looped = np.array(
            [
                registry.resolve(k).predict_records([r])[0]
                for k, r in zip(keys, records)
            ]
        )
        assert np.array_equal(batched, looped)

    def test_results_indexed_like_requests(self, registry):
        records = [make_record(psi=None, n_vms=k) for k in (2, 8, 3, 11)]
        keys = ["hot-aisle", "default", "hot-aisle", "default"]
        requests = [PredictionRequest(k, r) for k, r in zip(keys, records)]
        forward = predict_batch(registry, requests)
        reversed_out = predict_batch(registry, requests[::-1])
        assert np.array_equal(forward, reversed_out[::-1])

    def test_alias_and_fallback_group_with_their_entry(self, registry):
        record = make_record(psi=None, n_vms=4)
        direct = predict_batch(registry, [PredictionRequest("default", record)])
        fallback = predict_batch(
            registry, [PredictionRequest("unknown-class", record)]
        )
        assert np.array_equal(direct, fallback)


class TestBatchEdges:
    def test_empty_batch(self, registry):
        assert predict_batch(registry, []).shape == (0,)

    def test_unknown_key_without_default_raises(self):
        empty = ModelRegistry()
        with pytest.raises(ServingError, match="unknown model key"):
            predict_batch(empty, [PredictionRequest("x", make_record())])
