"""Tests for the shared Eq. (2) dedup signatures."""

import pytest

from repro.core.records import VmRecord
from repro.datacenter.vm import Vm, VmSpec
from repro.datacenter.workload import ConstantTask
from repro.serving.signatures import (
    record_signature,
    vm_record_from_spec,
    vm_signature,
)
from tests.conftest import make_record


def _spec(name: str, vcpus: int = 2, util: float = 0.5) -> VmSpec:
    return VmSpec(
        name=name,
        vcpus=vcpus,
        memory_gb=4.0,
        tasks=(ConstantTask(level=util),),
    )


class TestVmSignature:
    def test_identical_flavors_share_signature_despite_names(self):
        assert vm_signature(_spec("web-1")) == vm_signature(_spec("web-2"))

    def test_differing_shape_changes_signature(self):
        assert vm_signature(_spec("a", vcpus=2)) != vm_signature(_spec("a", vcpus=4))
        assert vm_signature(_spec("a", util=0.5)) != vm_signature(_spec("a", util=0.6))

    def test_signature_is_hashable(self):
        assert len({vm_signature(_spec("a")), vm_signature(_spec("b"))}) == 1


class TestRecordSignature:
    def test_metadata_and_output_excluded(self):
        base = make_record(psi=None, n_vms=3)
        with_output = make_record(psi=61.0, n_vms=3)
        assert record_signature(base) == record_signature(with_output)

    def test_model_inputs_all_participate(self):
        base = make_record(psi=None, n_vms=3)
        assert record_signature(base) != record_signature(
            make_record(psi=None, n_vms=4)
        )
        assert record_signature(base) != record_signature(
            make_record(psi=None, n_vms=3, env=25.0)
        )
        assert record_signature(base) != record_signature(
            make_record(psi=None, n_vms=3, fan_count=6)
        )

    def test_vm_order_is_preserved_not_sorted(self):
        small = VmRecord(
            vcpus=1, memory_gb=2.0, task_kinds=("constant",),
            nominal_utilization=0.3,
        )
        large = VmRecord(
            vcpus=8, memory_gb=32.0, task_kinds=("periodic",),
            nominal_utilization=0.7,
        )
        forward = make_record(psi=None, n_vms=0)
        forward = type(forward)(
            **{**forward.__dict__, "vms": (small, large), "metadata": {}}
        )
        backward = type(forward)(
            **{**forward.__dict__, "vms": (large, small), "metadata": {}}
        )
        assert record_signature(forward) != record_signature(backward)


class TestVmRecordFromSpec:
    def test_matches_whatif_projection(self):
        spec = _spec("web-1", vcpus=4, util=0.45)
        vm = Vm(spec)
        from repro.management.whatif import _vm_record

        assert vm_record_from_spec(spec) == _vm_record(vm)

    def test_fields_follow_spec(self):
        record = vm_record_from_spec(_spec("a", vcpus=4, util=0.25))
        assert record.vcpus == 4
        assert record.task_kinds == ("constant",)
        # nominal_utilization averages task level across vCPUs: 0.25 / 4.
        assert record.nominal_utilization == pytest.approx(0.0625)
