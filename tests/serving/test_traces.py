"""Tests for scenario-derived request traces."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import class_balanced_fleet_scenario
from repro.serving.registry import DEFAULT_KEY
from repro.serving.signatures import record_signature
from repro.serving.traces import (
    ARRIVALS,
    RequestTrace,
    TracedRequest,
    trace_from_scenario,
)
from repro.training import server_class_key
from tests.conftest import make_record


@pytest.fixture(scope="module")
def scenario():
    return class_balanced_fleet_scenario(
        n_classes=3, servers_per_class=4, seed=4_100, duration_s=600.0
    )


class TestRequestTraceValidation:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            RequestTrace(name="t", duration_s=0.0, requests=())

    def test_rejects_out_of_window_arrival(self):
        request = TracedRequest(
            arrival_s=5.0, key=DEFAULT_KEY, record=make_record(psi=None)
        )
        with pytest.raises(ConfigurationError, match="outside"):
            RequestTrace(name="t", duration_s=5.0, requests=(request,))

    def test_rejects_unsorted_arrivals(self):
        record = make_record(psi=None)
        requests = (
            TracedRequest(arrival_s=2.0, key=DEFAULT_KEY, record=record),
            TracedRequest(arrival_s=1.0, key=DEFAULT_KEY, record=record),
        )
        with pytest.raises(ConfigurationError, match="sorted"):
            RequestTrace(name="t", duration_s=5.0, requests=requests)


class TestTraceFromScenario:
    def test_deterministic_for_fixed_seed(self, scenario):
        first = trace_from_scenario(scenario, 100, duration_s=10.0, seed=7)
        second = trace_from_scenario(scenario, 100, duration_s=10.0, seed=7)
        assert first.requests == second.requests

    def test_seed_changes_the_trace(self, scenario):
        first = trace_from_scenario(scenario, 100, duration_s=10.0, seed=7)
        second = trace_from_scenario(scenario, 100, duration_s=10.0, seed=8)
        assert first.requests != second.requests

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_arrivals_sorted_and_bounded_every_mode(self, scenario, arrival):
        trace = trace_from_scenario(
            scenario, 200, duration_s=10.0, arrival=arrival, seed=3
        )
        arrivals = [r.arrival_s for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < 10.0 for a in arrivals)
        assert trace.n_requests == 200
        assert trace.mean_rate_per_s == pytest.approx(20.0)

    def test_unknown_arrival_mode_raises(self, scenario):
        with pytest.raises(ConfigurationError, match="arrival mode"):
            trace_from_scenario(scenario, 10, arrival="stampede")

    def test_hot_set_skew_concentrates_traffic(self, scenario):
        trace = trace_from_scenario(
            scenario, 800, duration_s=10.0, seed=5,
            hot_fraction=0.25, hot_weight=0.8, whatif_fraction=0.0,
        )
        counts: dict[tuple, int] = {}
        for request in trace.requests:
            signature = record_signature(request.record)
            counts[signature] = counts.get(signature, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        n_hot = max(1, round(0.25 * scenario.n_servers))
        hot_share = sum(ranked[:n_hot]) / trace.n_requests
        assert hot_share >= 0.6  # 0.8 nominal, finite-sample slack

    def test_whatif_fraction_appends_a_flavor(self, scenario):
        trace = trace_from_scenario(
            scenario, 100, duration_s=10.0, seed=9, whatif_fraction=1.0
        )
        assert all(r.record.metadata.get("hypothetical") for r in trace.requests)
        zero = trace_from_scenario(
            scenario, 100, duration_s=10.0, seed=9, whatif_fraction=0.0
        )
        assert not any(
            r.record.metadata.get("hypothetical") for r in zero.requests
        )

    def test_key_fn_routes_by_server_class(self, scenario):
        trace = trace_from_scenario(
            scenario, 60, duration_s=10.0, seed=2, key_fn=server_class_key
        )
        keys = {r.key for r in trace.requests}
        expected = {server_class_key(spec) for spec in scenario.server_specs}
        assert keys <= expected
        assert len(keys) > 1  # the skew still spans classes
        default_keyed = trace_from_scenario(scenario, 10, duration_s=1.0, seed=2)
        assert {r.key for r in default_keyed.requests} == {DEFAULT_KEY}

    def test_duration_defaults_to_scenario_window(self, scenario):
        trace = trace_from_scenario(scenario, 50)
        assert trace.duration_s == scenario.duration_s

    def test_parameter_validation(self, scenario):
        with pytest.raises(ConfigurationError, match="n_requests"):
            trace_from_scenario(scenario, 0)
        with pytest.raises(ConfigurationError, match="hot_fraction"):
            trace_from_scenario(scenario, 10, hot_fraction=0.0)
        with pytest.raises(ConfigurationError, match="hot_weight"):
            trace_from_scenario(scenario, 10, hot_weight=1.5)
        with pytest.raises(ConfigurationError, match="whatif_fraction"):
            trace_from_scenario(scenario, 10, whatif_fraction=-0.1)
