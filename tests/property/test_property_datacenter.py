"""Property-based tests for datacenter invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter.migration import plan_migration
from repro.datacenter.vm import Vm, VmSpec
from repro.datacenter.vmm import Vmm
from repro.datacenter.workload import ConstantTask


def busy_vm(name: str, vcpus: int, level: float) -> Vm:
    vm = Vm(
        VmSpec(
            name=name,
            vcpus=vcpus,
            memory_gb=1.0,
            tasks=tuple(ConstantTask(level=level) for _ in range(vcpus)),
        )
    )
    vm.start("host", 0.0)
    return vm


vm_lists = st.lists(
    st.tuples(st.integers(1, 8), st.floats(min_value=0.0, max_value=1.0)),
    min_size=0,
    max_size=10,
)


@given(vm_lists, st.integers(2, 64))
@settings(max_examples=60, deadline=None)
def test_vmm_never_over_allocates(vm_params, cores):
    vmm = Vmm(physical_cores=cores)
    vms = [busy_vm(f"v{i}", vcpus, level) for i, (vcpus, level) in enumerate(vm_params)]
    load = vmm.schedule(vms, time_s=5.0)
    total = sum(load.allocations.values()) + load.overhead_cores
    assert total <= cores + 1e-9
    assert 0.0 <= load.utilization <= 1.0


@given(vm_lists, st.integers(2, 64))
@settings(max_examples=60, deadline=None)
def test_vmm_conserves_demand(vm_params, cores):
    """allocation + steal = demand, per VM."""
    vmm = Vmm(physical_cores=cores)
    vms = [busy_vm(f"v{i}", vcpus, level) for i, (vcpus, level) in enumerate(vm_params)]
    load = vmm.schedule(vms, time_s=5.0)
    for vm in vms:
        demand = vm.cpu_demand(5.0)
        granted = load.allocations[vm.name] + load.steal[vm.name]
        assert abs(granted - demand) < 1e-9


@given(vm_lists, st.integers(2, 64))
@settings(max_examples=60, deadline=None)
def test_vmm_allocation_never_exceeds_demand(vm_params, cores):
    vmm = Vmm(physical_cores=cores)
    vms = [busy_vm(f"v{i}", vcpus, level) for i, (vcpus, level) in enumerate(vm_params)]
    load = vmm.schedule(vms, time_s=5.0)
    for vm in vms:
        assert load.allocations[vm.name] <= vm.cpu_demand(5.0) + 1e-9


migration_params = st.tuples(
    st.floats(min_value=0.5, max_value=256.0),  # memory
    st.floats(min_value=1.0, max_value=40.0),  # bandwidth
    st.floats(min_value=0.0, max_value=0.9),  # dirty fraction of bandwidth
    st.floats(min_value=0.05, max_value=2.0),  # downtime target
)


@given(migration_params)
@settings(max_examples=60, deadline=None)
def test_migration_transfers_at_least_image(params):
    memory, bandwidth, dirty_fraction, downtime = params
    plan = plan_migration(
        vm_memory_gb=memory,
        vm_name="vm",
        source="a",
        destination="b",
        bandwidth_gbps=bandwidth,
        dirty_rate_gbps=dirty_fraction * bandwidth,
        downtime_target_s=downtime,
    )
    assert plan.transferred_gb >= memory - 1e-9
    assert plan.duration_s >= memory / bandwidth - 1e-9
    assert plan.downtime_s <= plan.duration_s + 1e-9
    assert plan.rounds >= 1


@given(migration_params)
@settings(max_examples=60, deadline=None)
def test_migration_downtime_meets_target_or_round_cap(params):
    memory, bandwidth, dirty_fraction, downtime = params
    plan = plan_migration(
        vm_memory_gb=memory,
        vm_name="vm",
        source="a",
        destination="b",
        bandwidth_gbps=bandwidth,
        dirty_rate_gbps=dirty_fraction * bandwidth,
        downtime_target_s=downtime,
        max_rounds=40,
    )
    assert plan.downtime_s <= downtime + 1e-9 or plan.rounds == 40


@given(
    st.floats(min_value=0.5, max_value=64.0),
    st.floats(min_value=1.0, max_value=40.0),
)
@settings(max_examples=40, deadline=None)
def test_clean_migration_single_round(memory, bandwidth):
    """Zero dirty rate: exactly the image size, no downtime."""
    plan = plan_migration(
        vm_memory_gb=memory,
        vm_name="vm",
        source="a",
        destination="b",
        bandwidth_gbps=bandwidth,
        dirty_rate_gbps=0.0,
    )
    assert plan.rounds == 1
    assert abs(plan.transferred_gb - memory) < 1e-9
    assert plan.downtime_s == 0.0
