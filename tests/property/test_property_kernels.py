"""Property-based tests for kernels (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.svm.kernels import LinearKernel, RbfKernel, squared_distances

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def matrices(max_rows=8, cols=3):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.just(cols)),
        elements=finite_floats,
    )


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_rbf_gram_symmetric(x):
    gram = RbfKernel(gamma=0.3).gram(x, x)
    assert np.allclose(gram, gram.T, atol=1e-12)


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_rbf_diag_one_and_bounded(x):
    gram = RbfKernel(gamma=0.3).gram(x, x)
    assert np.allclose(np.diag(gram), 1.0)
    assert np.all(gram <= 1.0 + 1e-12)
    # exp() underflows to exactly 0.0 for very distant pairs — that is
    # still a valid kernel value.
    assert np.all(gram >= 0.0)


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_rbf_gram_positive_semidefinite(x):
    gram = RbfKernel(gamma=0.5).gram(x, x)
    eigenvalues = np.linalg.eigvalsh(gram)
    assert np.all(eigenvalues > -1e-8)


@given(matrices(), matrices())
@settings(max_examples=30, deadline=None)
def test_squared_distances_nonnegative_and_consistent(a, b):
    d2 = squared_distances(a, b)
    assert d2.shape == (a.shape[0], b.shape[0])
    assert np.all(d2 >= 0.0)
    # Spot-check one entry against the definition.
    expected = float(np.sum((a[0] - b[0]) ** 2))
    assert np.isclose(d2[0, 0], expected, atol=1e-6 * max(1.0, expected))


@given(matrices())
@settings(max_examples=30, deadline=None)
def test_linear_gram_matches_matmul(x):
    gram = LinearKernel().gram(x, x)
    assert np.allclose(gram, x @ x.T, atol=1e-9)


@given(
    matrices(),
    st.floats(min_value=0.01, max_value=5.0),
    st.floats(min_value=0.01, max_value=5.0),
)
@settings(max_examples=30, deadline=None)
def test_rbf_monotone_in_gamma(x, g_small, g_big):
    lo, hi = sorted((g_small, g_big))
    wide = RbfKernel(gamma=lo).gram(x, x)
    narrow = RbfKernel(gamma=hi).gram(x, x)
    # Off-diagonal similarities can only shrink as gamma grows.
    assert np.all(narrow <= wide + 1e-12)
