"""Property-based tests for the SMO solver: feasibility and KKT.

Whatever data the solver sees, its output must satisfy the dual
constraints exactly and the ε-insensitive KKT conditions approximately.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.svm.kernels import RbfKernel
from repro.svm.smo import solve_svr_dual

problem = st.tuples(
    st.integers(min_value=2, max_value=25),  # samples
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=0.5, max_value=100.0),  # C
    st.floats(min_value=0.01, max_value=1.0),  # epsilon
)


def make_problem(n, seed, gamma=0.5):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 2))
    y = np.sin(x[:, 0]) * 3.0 + x[:, 1] + rng.normal(0, 0.1, n)
    return RbfKernel(gamma=gamma).gram(x, x), y


@given(problem)
@settings(max_examples=40, deadline=None)
def test_dual_feasibility(params):
    n, seed, c, epsilon = params
    k, y = make_problem(n, seed)
    result = solve_svr_dual(k, y, c=c, epsilon=epsilon)
    assert np.sum(result.beta) == np.float64(0.0) or abs(np.sum(result.beta)) < 1e-8
    assert np.all(result.beta <= c + 1e-9)
    assert np.all(result.beta >= -c - 1e-9)


@given(problem)
@settings(max_examples=25, deadline=None)
def test_kkt_gap_reported_honestly(params):
    n, seed, c, epsilon = params
    k, y = make_problem(n, seed)
    result = solve_svr_dual(k, y, c=c, epsilon=epsilon, tol=1e-3)
    if result.converged:
        assert result.kkt_gap <= 1e-3 + 1e-9


@given(problem)
@settings(max_examples=25, deadline=None)
def test_interior_points_inactive(params):
    """Complementary slackness: points strictly inside the ε-tube carry
    no bound-level dual weight.

    The solver stops at KKT gap ≤ tol, so a bound variable may sit within
    ~tol of the tube boundary; "strictly inside" must leave that margin.
    """
    n, seed, c, epsilon = params
    tol = 1e-3
    k, y = make_problem(n, seed)
    result = solve_svr_dual(k, y, c=c, epsilon=epsilon, tol=tol)
    predictions = k @ result.beta + result.bias
    residuals = np.abs(y - predictions)
    interior = residuals < epsilon - 10.0 * tol
    assert np.all(np.abs(result.beta[interior]) < c - 1e-12)


@given(problem)
@settings(max_examples=25, deadline=None)
def test_objective_no_worse_than_zero_vector(params):
    """The dual objective at the solution must not exceed the value at
    β=0 (the solver starts there and only descends)."""
    n, seed, c, epsilon = params
    k, y = make_problem(n, seed)
    result = solve_svr_dual(k, y, c=c, epsilon=epsilon)
    beta = result.beta
    objective = 0.5 * beta @ k @ beta - y @ beta + epsilon * np.sum(np.abs(beta))
    assert objective <= 1e-8


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_prediction_error_bounded_by_tube_for_separable(seed):
    """With a huge C and wide tube, training residuals must fall within
    ε (+ solver tolerance) for a smooth target."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(15, 1))
    y = 2.0 * x[:, 0]
    k = RbfKernel(gamma=1.0).gram(x, x)
    result = solve_svr_dual(k, y, c=1e4, epsilon=0.5)
    predictions = k @ result.beta + result.bias
    assert np.max(np.abs(predictions - y)) <= 0.5 + 0.05
