"""Property-based tests for feature extraction and record round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.features import FeatureExtractor
from repro.core.records import ExperimentRecord, VmRecord
from repro.datacenter.workload import TASK_KINDS
from repro.svm.scaling import MinMaxScaler

vm_records = st.builds(
    VmRecord,
    vcpus=st.integers(1, 16),
    memory_gb=st.floats(min_value=0.5, max_value=64.0),
    task_kinds=st.lists(st.sampled_from(TASK_KINDS), max_size=4).map(tuple),
    nominal_utilization=st.floats(min_value=0.0, max_value=1.0),
)

experiment_records = st.builds(
    ExperimentRecord,
    theta_cpu_cores=st.integers(1, 64),
    theta_cpu_ghz=st.floats(min_value=1.0, max_value=200.0),
    theta_memory_gb=st.floats(min_value=4.0, max_value=1024.0),
    theta_fan_count=st.integers(1, 12),
    theta_fan_speed=st.floats(min_value=0.05, max_value=1.0),
    delta_env_c=st.floats(min_value=5.0, max_value=45.0),
    vms=st.lists(vm_records, max_size=12).map(tuple),
    psi_stable_c=st.one_of(st.none(), st.floats(min_value=20.0, max_value=110.0)),
)


@given(experiment_records)
@settings(max_examples=80, deadline=None)
def test_feature_vector_finite_and_fixed_length(record):
    extractor = FeatureExtractor()
    vector = extractor.extract(record)
    assert vector.shape == (extractor.n_features,)
    assert np.all(np.isfinite(vector))


@given(experiment_records)
@settings(max_examples=60, deadline=None)
def test_util_estimate_in_unit_interval(record):
    extractor = FeatureExtractor()
    vector = extractor.extract(record)
    util = vector[extractor.feature_names.index("util_estimate")]
    assert 0.0 <= util <= 1.0


@given(experiment_records)
@settings(max_examples=60, deadline=None)
def test_vm_order_invariance(record):
    extractor = FeatureExtractor()
    permuted = ExperimentRecord(
        theta_cpu_cores=record.theta_cpu_cores,
        theta_cpu_ghz=record.theta_cpu_ghz,
        theta_memory_gb=record.theta_memory_gb,
        theta_fan_count=record.theta_fan_count,
        theta_fan_speed=record.theta_fan_speed,
        delta_env_c=record.delta_env_c,
        vms=record.vms[::-1],
        psi_stable_c=record.psi_stable_c,
    )
    assert np.allclose(extractor.extract(record), extractor.extract(permuted))


@given(experiment_records)
@settings(max_examples=80, deadline=None)
def test_record_json_round_trip(record):
    restored = ExperimentRecord.from_dict(record.to_dict())
    assert restored == record


@given(st.lists(experiment_records, min_size=2, max_size=15))
@settings(max_examples=40, deadline=None)
def test_scaled_feature_matrix_bounded_on_training_data(records):
    extractor = FeatureExtractor()
    matrix = extractor.matrix(records)
    scaled = MinMaxScaler().fit_transform(matrix)
    assert scaled.min() >= -1.0 - 1e-9
    assert scaled.max() <= 1.0 + 1e-9
