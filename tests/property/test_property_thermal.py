"""Property-based tests for the thermal substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.fan import FanBank
from repro.thermal.power import CpuPowerModel
from repro.thermal.rc import RcNetwork, ThermalNode

utilizations = st.floats(min_value=0.0, max_value=1.0)
ambients = st.floats(min_value=10.0, max_value=40.0)


@given(utilizations, utilizations)
@settings(max_examples=60, deadline=None)
def test_power_monotone(u1, u2):
    model = CpuPowerModel()
    lo, hi = sorted((u1, u2))
    assert model.power(lo) <= model.power(hi) + 1e-12


@given(utilizations)
@settings(max_examples=60, deadline=None)
def test_power_within_declared_bounds(u):
    model = CpuPowerModel(memory_gb=0.0)
    assert model.idle_power_w - 1e-9 <= model.power(u) <= model.max_power_w + 1e-9


@given(st.integers(1, 12), st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_fan_resistance_scale_positive_and_finite(count, speed):
    bank = FanBank(count=count, speed=speed)
    scale = bank.resistance_scale()
    assert 0.0 < scale < 10.0


@given(
    st.integers(1, 8),
    st.integers(1, 8),
    st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_fan_resistance_monotone_in_count(count_a, count_b, speed):
    lo, hi = sorted((count_a, count_b))
    weak = FanBank(count=lo, speed=speed)
    strong = FanBank(count=hi, speed=speed)
    assert strong.resistance_scale() <= weak.resistance_scale() + 1e-12


@given(
    st.floats(min_value=10.0, max_value=500.0),  # power
    ambients,
    st.floats(min_value=50.0, max_value=500.0),  # capacity
    st.floats(min_value=0.01, max_value=1.0),  # resistance
)
@settings(max_examples=60, deadline=None)
def test_single_lump_steady_state_formula(power, ambient, capacity, resistance):
    net = RcNetwork(
        nodes=[ThermalNode("l", capacity, ambient_resistance_k_per_w=resistance)]
    )
    steady = net.steady_state({"l": power}, ambient)["l"]
    assert abs(steady - (ambient + power * resistance)) < 1e-6


@given(
    st.floats(min_value=0.0, max_value=300.0),
    ambients,
    st.integers(10, 300),
)
@settings(max_examples=40, deadline=None)
def test_integration_never_overshoots_steady_state_from_below(power, ambient, steps):
    """A single lump heated from ambient approaches steady state
    monotonically (explicit Euler is stable at dt ≪ τ)."""
    net = RcNetwork(nodes=[ThermalNode("l", 150.0, ambient_resistance_k_per_w=0.2)])
    net.set_all_temperatures(ambient)
    steady = net.steady_state({"l": power}, ambient)["l"]
    previous = ambient
    for _ in range(steps):
        net.step(1.0, {"l": power}, ambient)
        current = net.temperature("l")
        assert current >= previous - 1e-9
        assert current <= steady + 1e-6
        previous = current
