"""Property-based tests for the pre-defined curve and calibration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import RuntimeCalibrator
from repro.core.curve import PredefinedCurve

temps = st.floats(min_value=10.0, max_value=100.0, allow_nan=False)
curve_params = st.tuples(
    temps,  # phi_0
    temps,  # psi_stable
    st.floats(min_value=60.0, max_value=1200.0),  # t_break
    st.floats(min_value=0.001, max_value=1.0),  # delta
)


@given(curve_params, st.floats(min_value=0.0, max_value=2000.0))
@settings(max_examples=80, deadline=None)
def test_curve_bounded_by_endpoints(params, t):
    phi0, psi, t_break, delta = params
    curve = PredefinedCurve(phi_0=phi0, psi_stable=psi, t_break_s=t_break, delta=delta)
    value = curve.value(t)
    lo, hi = min(phi0, psi), max(phi0, psi)
    assert lo - 1e-9 <= value <= hi + 1e-9


@given(curve_params)
@settings(max_examples=60, deadline=None)
def test_curve_hits_exact_endpoints(params):
    phi0, psi, t_break, delta = params
    curve = PredefinedCurve(phi_0=phi0, psi_stable=psi, t_break_s=t_break, delta=delta)
    assert curve.value(0.0) == phi0
    assert abs(curve.value(t_break) - psi) < 1e-9
    assert curve.value(t_break * 3.0) == psi


@given(curve_params, st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=20))
@settings(max_examples=60, deadline=None)
def test_curve_monotone_between_endpoints(params, fractions):
    phi0, psi, t_break, delta = params
    curve = PredefinedCurve(phi_0=phi0, psi_stable=psi, t_break_s=t_break, delta=delta)
    times = sorted(f * t_break for f in fractions)
    values = [curve.value(t) for t in times]
    if psi >= phi0:
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
    else:
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


@given(curve_params, temps, st.floats(min_value=0.0, max_value=5000.0))
@settings(max_examples=60, deadline=None)
def test_retarget_preserves_anchor(params, new_phi, origin):
    phi0, psi, t_break, delta = params
    curve = PredefinedCurve(phi_0=phi0, psi_stable=psi, t_break_s=t_break, delta=delta)
    fresh = curve.retargeted(origin_s=origin, phi_0=new_phi, psi_stable=psi)
    assert fresh.value(origin) == new_phi
    assert abs(fresh.value(origin + t_break) - psi) < 1e-9


@given(
    st.floats(min_value=0.0, max_value=1.0),  # λ
    st.lists(st.tuples(temps, temps), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_calibration_gamma_bounded_by_observed_offsets(lam, observations):
    """γ is a convex-combination tracker: it can never exceed the largest
    measured offset in magnitude."""
    calibrator = RuntimeCalibrator(learning_rate=lam)
    max_offset = 0.0
    for step, (measured, curve_value) in enumerate(observations):
        calibrator.update(float(step), measured, curve_value)
        max_offset = max(max_offset, abs(measured - curve_value))
    assert abs(calibrator.gamma) <= max_offset + 1e-9


@given(st.floats(min_value=0.01, max_value=1.0), temps, temps)
@settings(max_examples=60, deadline=None)
def test_calibration_fixed_point_is_exact_offset(lam, measured, curve_value):
    """Feeding the same (measured, curve) pair repeatedly converges γ to
    the exact offset for any λ > 0."""
    calibrator = RuntimeCalibrator(learning_rate=lam)
    for step in range(2000):
        calibrator.update(float(step), measured, curve_value)
        if abs(calibrator.gamma - (measured - curve_value)) < 1e-9:
            break
    assert abs(calibrator.gamma - (measured - curve_value)) < 1e-6
