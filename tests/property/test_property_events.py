"""Property-based tests for the event queue and RNG streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter.events import EventQueue, FunctionEvent
from repro.rng import RngFactory, RngStream, derive_seed


def noop(_sim):
    pass


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_queue_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(FunctionEvent(t, noop))
    popped = [queue.pop().time_s for _ in range(len(times))]
    assert popped == sorted(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
    st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_pop_due_partitions_correctly(times, now):
    queue = EventQueue()
    for t in times:
        queue.push(FunctionEvent(t, noop))
    due = queue.pop_due(now)
    assert all(e.time_s <= now + 1e-9 for e in due)
    remaining = [queue.pop().time_s for _ in range(len(queue))]
    assert all(t > now - 1e-9 for t in remaining)
    assert len(due) + len(remaining) == len(times)


@given(st.integers(min_value=2, max_value=30))
@settings(max_examples=30, deadline=None)
def test_equal_times_preserve_insertion_order(n):
    queue = EventQueue()
    for i in range(n):
        queue.push(FunctionEvent(7.0, noop, label=str(i)))
    labels = [queue.pop().label for _ in range(n)]
    assert labels == [str(i) for i in range(n)]


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_derived_seeds_stable_and_distinct_per_name(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)
    assert derive_seed(seed, name) != derive_seed(seed, name + "x")


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_streams_independent_of_sibling_draw_order(seed):
    """Drawing from one stream must not shift a sibling stream."""
    factory_a = RngFactory(seed)
    sequence_undisturbed = [factory_a.stream("target").random() for _ in range(5)]

    factory_b = RngFactory(seed)
    factory_b.stream("noise").random()  # interleaved sibling draw
    sequence_disturbed = [factory_b.stream("target").random() for _ in range(5)]
    assert sequence_undisturbed == sequence_disturbed


@given(st.integers(min_value=0, max_value=2**31), st.integers(1, 100))
@settings(max_examples=30, deadline=None)
def test_stream_permutation_is_permutation(seed, n):
    stream = RngStream(seed, "perm")
    permutation = stream.permutation(n)
    assert sorted(permutation) == list(range(n))
