"""Property tests: fuzzed scenarios uphold every simulation invariant.

The tier-1 smoke slice of the nightly wide sweep (``fleet-scenario fuzz
--count 200 --strict`` in CI): a handful of fixed seeds run end to end
under the invariant harness, plus a wider compile-only sweep over the
grammar. Seeds are fixed so a regression bisects to a reproducible
document.
"""

import pytest

from repro.scenarios import ScenarioFuzzer, run_with_invariants

#: End-to-end seeds: enough to cross arrivals, migrations, and ambient
#: faults, small enough for tier-1 (< ~2 s total).
SMOKE_SEEDS = (0, 7, 13, 21, 34, 55)


@pytest.fixture(scope="module")
def fuzzer():
    return ScenarioFuzzer()


class TestFuzzedScenariosEndToEnd:
    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_invariants_hold(self, fuzzer, seed):
        scenario = fuzzer.scenario(seed)
        report = run_with_invariants(scenario, check_interval_s=120.0)
        assert report.ok, (
            f"seed {seed} ({scenario.name}) violated: {report.violations}"
        )
        assert report.checks > 0
        assert report.pue is None or report.pue >= 1.0

    def test_smoke_seeds_cover_timeline_events(self, fuzzer):
        # The fixed seeds must keep exercising the timeline machinery;
        # if the grammar shifts and they all go quiet, pick new seeds.
        total_events = sum(
            len(fuzzer.spec(seed)["timeline"]) for seed in SMOKE_SEEDS
        )
        assert total_events > 0


class TestGrammarSweep:
    def test_forty_seeds_compile_clean(self, fuzzer):
        for seed in range(40):
            scenario = fuzzer.scenario(seed)
            assert scenario.duration_s > 0
            assert scenario.n_servers == len(scenario.vm_specs)

    def test_arrival_and_migration_times_inside_run(self, fuzzer):
        for seed in range(40):
            scenario = fuzzer.scenario(seed)
            for time_s, _, _ in scenario.arrivals:
                assert 0.0 <= time_s < scenario.duration_s
            for time_s, _, _ in scenario.migrations:
                assert 0.0 <= time_s < scenario.duration_s
