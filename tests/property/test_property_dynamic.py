"""Property-based tests for the dynamic prediction loop."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import PredictionConfig
from repro.core.curve import PredefinedCurve
from repro.core.dynamic import replay_dynamic_prediction

temps = st.floats(min_value=20.0, max_value=90.0)


def first_order_trace(phi0, target, tau, duration=1500.0, dt=5.0):
    times, values = [], []
    t = 0.0
    while t <= duration:
        times.append(t)
        values.append(target + (phi0 - target) * math.exp(-t / tau))
        t += dt
    return times, values


@given(
    temps,
    temps,
    st.floats(min_value=50.0, max_value=400.0),
    st.floats(min_value=20.0, max_value=120.0),
)
@settings(max_examples=40, deadline=None)
def test_calibrated_never_much_worse_than_uncalibrated(phi0, target, tau, gap):
    """On first-order plants the calibrated arm beats (or matches within
    noise) the uncalibrated arm — the paper's Fig 1(b) property.

    The property only holds while the forecast horizon is short relative
    to the plant: when Δ_gap approaches the time constant, a calibration
    learned from the *current* error genuinely over-corrects a Δ_gap-ahead
    forecast (measured worst calibrated/uncalibrated MSE ratios: 0.87 at
    gap = 0.4·τ, 1.41 at gap = 0.5·τ, ≈2 at gap = 0.8·τ). The quantifier
    is therefore restricted to gap ≤ 0.4·τ — comfortably containing the
    paper's regime (Δ_gap 60 s against multi-minute thermal time
    constants).
    """
    assume(gap <= 0.4 * tau)
    times, values = first_order_trace(phi0, target, tau)
    config = PredictionConfig(prediction_gap_s=gap, update_interval_s=15.0)
    curve = PredefinedCurve(phi_0=phi0, psi_stable=target, t_break_s=600.0)
    calibrated = replay_dynamic_prediction(times, values, curve, config)
    uncalibrated = replay_dynamic_prediction(
        times, values, curve, config, calibrated=False
    )
    # "Never much worse": relative slack plus a small absolute floor for
    # near-degenerate plants (φ0 ≈ target) where both arms are near-exact.
    assert calibrated.mse <= uncalibrated.mse * 1.05 + 1e-4


@given(temps, temps, st.floats(min_value=50.0, max_value=400.0))
@settings(max_examples=40, deadline=None)
def test_predictions_bounded_by_trace_envelope(phi0, target, tau):
    """Forecasts stay within the [min, max] envelope of curve+trace — the
    calibrator cannot overshoot what it has seen on monotone traces."""
    times, values = first_order_trace(phi0, target, tau)
    config = PredictionConfig()
    curve = PredefinedCurve(phi_0=phi0, psi_stable=target, t_break_s=600.0)
    result = replay_dynamic_prediction(times, values, curve, config)
    lo = min(min(values), min(phi0, target)) - 1.0
    hi = max(max(values), max(phi0, target)) + 1.0
    span = hi - lo
    for predicted in result.predicted_values:
        assert lo - 0.5 * span <= predicted <= hi + 0.5 * span


@given(temps, st.floats(min_value=50.0, max_value=400.0))
@settings(max_examples=30, deadline=None)
def test_perfect_knowledge_gives_near_zero_mse_at_saturation(target, tau):
    """Once both trace and curve are saturated at the same value, the
    calibrated predictions become exact."""
    times, values = first_order_trace(target, target, tau)  # flat trace
    config = PredictionConfig()
    curve = PredefinedCurve(phi_0=target, psi_stable=target, t_break_s=600.0)
    result = replay_dynamic_prediction(times, values, curve, config)
    assert result.mse < 1e-12
