"""Whole-program reprolint layer: R005/R201/R202/R203 + ``graph``.

Same fixture discipline as ``test_reprolint.py`` — each project rule
fires on its known-bad mini-repo and stays silent on the known-good one
— plus the behavioral half of R005's story: the real ``FleetState`` /
``FleetLoadView`` pair desyncing under exactly the store-without-bump
the rule flags, and staying coherent through the sanctioned mutator.
Acceptance: the committed layer map matches the real import graph
(cycle-free, fully covering), the whole-repo ``--strict`` sweep
including ``tools/`` exits 0 with the shipped empty baseline, and
``reprolint graph`` renders the map.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import run_lint
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.graph import load_layer_map

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def mini_repo(tmp_path: Path, files: dict[str, str]) -> Path:
    """Lay out ``files`` (rel path → content or fixtures/<name> source)."""
    for rel, content in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        is_fixture = "\n" not in content and (FIXTURES / content).is_file()
        target.write_text(
            (FIXTURES / content).read_text() if is_fixture else content
        )
    return tmp_path


def lint(root: Path, *, rules: str, strict: bool = False, paths=("src", "tests")):
    present = [p for p in paths if (root / p).is_dir()]
    return run_lint(present, root=root, strict=strict, select=set(rules.split(",")))


class TestR201LayerDag:
    LAYERED = {"tools/reprolint/layers.toml": "r201_layers.toml"}

    def test_fires_on_upward_import_and_cycle(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                **self.LAYERED,
                "src/repro/alpha.py": "r201_bad_low.py",
                "src/repro/beta.py": "r201_bad_high.py",
            },
        )
        findings = lint(root, rules="R201").active()
        blurbs = "\n".join(f.message for f in findings)
        assert len(findings) == 3
        assert "upward import" in blurbs
        assert "repro.alpha (layer 'low') eagerly imports repro.beta" in blurbs
        assert blurbs.count("eager import cycle") == 2
        assert "repro.alpha -> repro.beta -> repro.alpha" in blurbs

    def test_fires_on_unmapped_module(self, tmp_path):
        root = mini_repo(
            tmp_path, {**self.LAYERED, "src/repro/gamma.py": "X = 1\n"}
        )
        findings = lint(root, rules="R201").active()
        assert len(findings) == 1
        assert "not covered by the layer map" in findings[0].message

    def test_silent_on_lazy_and_type_checking_imports(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                **self.LAYERED,
                "src/repro/alpha.py": "r201_good_low.py",
                "src/repro/beta.py": "r201_good_high.py",
            },
        )
        assert lint(root, rules="R201").active() == []

    def test_committed_layer_map_matches_real_tree(self):
        """Acceptance: the shipped layers.toml covers src/repro and the
        eager import graph is a DAG under it."""
        result = run_lint(["src"], root=REPO_ROOT, select={"R201"})
        assert result.active() == []
        layer_map = load_layer_map(REPO_ROOT)
        assert layer_map.layers()  # parsed, non-empty
        assert layer_map.layer_of("repro.core.pipeline") == "training"


class TestR005GenerationBump:
    def test_fires_on_every_miss_shape(self, tmp_path):
        root = mini_repo(
            tmp_path, {"src/repro/datacenter/fleetstate.py": "r005_bad.py"}
        )
        findings = lint(root, rules="R005").active()
        blurbs = "\n".join(f.message for f in findings)
        assert len(findings) == 4
        assert "FleetState.set_temperature stores into 't_cpu_c'" in blurbs
        assert "FleetState.host_vm stores into 'used_vcpus'" in blurbs
        assert "placement_generation bump" in blurbs
        assert "FleetState.transition stores into 'vm_state_code'" in blurbs
        assert "direct store to FleetState array 't_cpu_c'" in blurbs

    def test_silent_on_bumped_paths_and_callsite_rescue(self, tmp_path):
        root = mini_repo(
            tmp_path, {"src/repro/datacenter/fleetstate.py": "r005_good.py"}
        )
        assert lint(root, rules="R005").active() == []

    def test_waiver_round_trip(self, tmp_path):
        bad = (FIXTURES / "r005_bad.py").read_text()
        waived = bad.replace(
            "        self.t_cpu_c[slot] = value",
            "        # reprolint: waive R005 -- scratch write, consumer-free\n"
            "        self.t_cpu_c[slot] = value",
        )
        root = mini_repo(
            tmp_path, {"src/repro/datacenter/fleetstate.py": waived}
        )
        result = lint(root, rules="R005")
        assert len(result.active()) == 3  # one of four waived
        waived_findings = [f for f in result.findings if f.waived]
        assert len(waived_findings) == 1
        assert waived_findings[0].waive_reason == "scratch write, consumer-free"

    def test_desync_the_rule_prevents_is_real(self):
        """Behavioral half of the contract: the exact store R005 flags
        (vm_state_code write without a placement bump) leaves a live
        FleetLoadView serving the stopped VM's load; the sanctioned
        mutator path refreshes it."""
        from repro.datacenter.cluster import Cluster
        from repro.datacenter.fleet_load import FleetLoadView
        from repro.datacenter.resources import ResourceCapacity
        from repro.datacenter.server import Server, ServerSpec
        from repro.datacenter.vm import STATE_CODES, Vm, VmSpec, VmState
        from repro.datacenter.workload import ConstantTask

        def build():
            cluster = Cluster("desync")
            server = Server(
                ServerSpec(
                    name="s0",
                    capacity=ResourceCapacity(
                        cpu_cores=16, ghz_per_core=2.4, memory_gb=64.0
                    ),
                )
            )
            server.host_vm(
                Vm(
                    VmSpec(
                        name="vm0", vcpus=2, memory_gb=4.0,
                        tasks=(ConstantTask(level=0.5),),
                    )
                ),
                time_s=0.0,
            )
            cluster.add_server(server)
            fs = cluster.fleet_state
            return fs, FleetLoadView(fs)

        terminated = STATE_CODES[VmState.TERMINATED]

        fs, view = build()
        busy = view.utilizations(10.0)[0]
        assert busy > 0.0
        fs.vm_state_code[fs.vm_index["vm0"]] = terminated  # the R005 bug
        assert view.utilizations(10.0)[0] == busy  # stale: desynced

        fs, view = build()
        assert view.utilizations(10.0)[0] == busy
        fs.set_vm_state(fs.vm_index["vm0"], terminated)  # sanctioned mutator
        assert view.utilizations(10.0)[0] == 0.0  # refreshed


class TestR202ExportSurface:
    def test_fires_on_unbound_duplicate_unsorted_missing(self, tmp_path):
        root = mini_repo(
            tmp_path, {"src/repro/widgets/__init__.py": "r202_bad.py"}
        )
        findings = lint(root, rules="R202").active()
        blurbs = "\n".join(f.message for f in findings)
        assert len(findings) == 5
        assert "exports 'Ghost' but no top-level binding" in blurbs
        assert "lists 'Widget' more than once" in blurbs
        assert "__all__ is not sorted" in blurbs
        assert "'build_widget' is bound" in blurbs
        assert "'FACTOR' is bound" in blurbs

    def test_fires_on_package_init_without_all(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/empty/__init__.py": "X = 1\n"})
        findings = lint(root, rules="R202").active()
        assert len(findings) == 1
        assert "declares no __all__" in findings[0].message

    def test_silent_on_clean_surface(self, tmp_path):
        root = mini_repo(
            tmp_path, {"src/repro/widgets/__init__.py": "r202_good.py"}
        )
        assert lint(root, rules="R202").active() == []


class TestR203DeadApi:
    TESTS = {"tests/test_orphan.py": "from repro.orphan import caller\n"}

    def test_fires_on_unreachable_public_defs(self, tmp_path):
        root = mini_repo(
            tmp_path, {**self.TESTS, "src/repro/orphan.py": "r203_bad.py"}
        )
        findings = lint(root, rules="R203").active()
        names = {f.message.split("'")[1] for f in findings}
        assert names == {"orphan_function", "OrphanClass"}
        assert all(f.severity == "warning" for f in findings)

    def test_skipped_when_no_tests_collected(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/orphan.py": "r203_bad.py"})
        assert lint(root, rules="R203").active() == []

    def test_silent_when_reachable(self, tmp_path):
        root = mini_repo(
            tmp_path, {**self.TESTS, "src/repro/orphan.py": "r203_good.py"}
        )
        assert lint(root, rules="R203").active() == []


class TestGraphCommand:
    def test_real_repo_graph_renders_and_is_acyclic(self, tmp_path):
        dot_path = tmp_path / "layers.dot"
        proc = subprocess.run(
            [
                sys.executable, "-m", "tools.reprolint", "graph",
                "--dot", str(dot_path),
            ],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 cycle(s)" in proc.stdout
        assert "layer map:" in proc.stdout
        assert dot_path.read_text().startswith("digraph")

    def test_exit_1_on_cycle(self, tmp_path, capsys):
        root = mini_repo(
            tmp_path,
            {
                "tools/reprolint/layers.toml": "r201_layers.toml",
                "src/repro/alpha.py": "r201_bad_low.py",
                "src/repro/beta.py": "r201_bad_high.py",
            },
        )
        code = reprolint_main(["graph", "src", "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 cycle(s)" in out


class TestStrictSweepAcceptance:
    def test_whole_repo_strict_including_tools_is_clean(self):
        """The tentpole acceptance: src + tests + benchmarks + the
        linter itself pass --strict with the shipped empty baseline."""
        proc = subprocess.run(
            [
                sys.executable, "-m", "tools.reprolint", "--strict",
                "src", "tests", "benchmarks", "tools",
            ],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 error(s), 0 warning(s)" in proc.stdout
