"""Bad: FleetState array stores with missing or partial generation bumps.

Miniature of the PR-8 SoA core. Four violations:

* ``set_temperature`` stores and bumps nothing;
* ``host_vm`` stores into a placement-class field but bumps only the
  master ``generation`` counter (FleetLoadView keys off
  ``placement_generation`` — the exact desync the behavioral test
  reproduces against the real classes);
* ``transition`` stores after the conditional bump, so no path covers
  the store;
* ``ServerView.force_temperature`` writes the array directly from
  outside the class instead of routing through a mutator.
"""

import numpy as np

_SERVER_FLOAT_FIELDS = ("t_cpu_c", "used_memory_gb")
_SERVER_INT_FIELDS = ("used_vcpus", "n_running", "server_generation")


class FleetState:
    def __init__(self):
        for name in _SERVER_FLOAT_FIELDS:
            setattr(self, name, np.zeros(0, dtype=float))
        for name in _SERVER_INT_FIELDS:
            setattr(self, name, np.zeros(0, dtype=np.int64))
        self.vm_state_code = np.zeros(0, dtype=np.int8)
        self.generation = 0
        self.placement_generation = 0

    def set_temperature(self, slot, value):
        self.t_cpu_c[slot] = value

    def host_vm(self, slot, vcpus):
        self.used_vcpus[slot] += vcpus
        self.generation += 1

    def transition(self, slot, running):
        if running:
            self.n_running[slot] += 1
            self._bump_placement(slot)
        self.vm_state_code[slot] = 1

    def _bump_placement(self, slot):
        self.server_generation[slot] += 1
        self.placement_generation += 1
        self.generation += 1


class ServerView:
    def __init__(self, fs, slot):
        self._fs = fs
        self._slot = slot

    def force_temperature(self, value):
        self._fs.t_cpu_c[self._slot] = value
