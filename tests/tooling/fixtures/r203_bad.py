"""Bad: public defs nothing in the corpus reaches.

``orphan_function`` and ``OrphanClass`` are referenced by no import,
test, ``__all__``, or even this module itself; ``used_locally`` is kept
alive by ``caller``, and ``caller`` by the accompanying test file.
"""


def orphan_function(x):
    return x * 2


class OrphanClass:
    pass


def used_locally(x):
    return x + 1


def caller(x):
    return used_locally(x)
