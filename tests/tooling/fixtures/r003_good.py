"""R003 known-good fixture: consistent units and explicit conversions."""


def accounting(duration_s, interval_s, power_w, ambient_c, delta_c):
    window_s = duration_s + interval_s      # same unit
    energy_j = power_w * duration_s         # multiplicative combine: W x s = J
    threshold_c = ambient_c + delta_c       # same unit
    cooldown_s = minutes_to_seconds(5.0)    # conversion call -> no unit clash
    if window_s > cooldown_s:
        return energy_j, threshold_c
    return 0.0, threshold_c


def minutes_to_seconds(minutes):
    return minutes * 60.0
