"""R004 fixture test corpus (placed under tests/ in the mini repo).

References each vectorized name of ``r004_good`` together with its
scalar counterpart, the way a real parity test would.
"""


def test_scan_fleet_matches_scalar_scan():
    from repro.eng import scan, scan_fleet

    assert scan_fleet([70.0, 80.0], 75.0) == [80.0]
    assert scan(80.0, 75.0)


def test_score_batch_matches_score_rows():
    from repro.eng import score_batch

    score_rows = sum
    assert score_batch([[1, 2]]) == [score_rows([1, 2])]


def test_failure_spec_matches_failure_scenario():
    from repro.eng import failure_spec

    failure_scenario = dict
    assert failure_spec(2) == failure_scenario(n=2)
