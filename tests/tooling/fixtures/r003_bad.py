"""R003 known-bad fixture: every statement mixes unit suffixes."""


def broken_accounting(duration_s, threshold_c, power_w, energy_j):
    total = duration_s + threshold_c        # seconds + degC
    if power_w > threshold_c:               # watts vs degC compare
        duration_s = energy_j               # seconds <- joules assign
    total -= power_w                        # fine: 'total' has no unit
    energy_j += duration_s                  # joules += seconds
    simulate(deadline_s=threshold_c)        # seconds keyword <- degC name
    return total


def simulate(deadline_s):
    return deadline_s
