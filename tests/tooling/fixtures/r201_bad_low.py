"""Bad: the low layer eagerly imports the high layer (and closes a cycle)."""

from repro.beta import summit


def base():
    return summit() - 1
