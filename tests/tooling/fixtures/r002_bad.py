"""R002 known-bad fixture: the PR 5 registry-aliasing bug in miniature.

``MiniRegistry`` captures the fitted SVR and scaler it is handed by
reference. ``refit_in_place`` then mutates the very objects a "frozen"
entry serves — exactly the stale-model hazard PR 5 spent a cycle on.
"""


class MiniEntry:
    def __init__(self, model, scaler):
        self.model = model
        self.scaler = scaler


class MiniRegistry:
    def __init__(self):
        self._entries = {}

    def register(self, key, model, scaler):
        self._entries[key] = MiniEntry(model, scaler)

    def stash_default(self, model):
        self._entries["default"] = model


def refit_in_place(model, rows):
    model.coef_ = rows.mean(axis=0)  # mutates what the registry serves
    return model
