"""High layer importing low: fine by height, but part of the cycle."""

import repro.alpha


def summit():
    return repro.alpha.base() + 1
