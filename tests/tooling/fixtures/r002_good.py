"""R002 known-good fixture: fitted components are snapshotted on entry."""

import copy


class MiniEntry:
    def __init__(self, model, scaler):
        self.model = copy.deepcopy(model)
        self.scaler = copy.deepcopy(scaler)


class MiniRegistry:
    def __init__(self):
        self._entries = {}

    def register(self, key, model, scaler):
        snapshot = copy.deepcopy(model)
        self._entries[key] = MiniEntry(snapshot, scaler)
