"""R001 known-bad fixture: every line here routes around repro.rng."""

import random
import time

import numpy as np
from random import shuffle  # noqa: F401  (flagged at the import)


def jitter_arrivals(times_s):
    offset = random.uniform(0.0, 5.0)
    noise = np.random.normal(0.0, 1.0, size=len(times_s))
    rng = np.random.default_rng()
    seed_from_clock = time.time()
    unseeded = random.Random()
    return offset, noise, rng, seed_from_clock, unseeded
