"""Bad package __init__: unbound export, duplicate, unsorted, missing.

Placed at ``src/repro/widgets/__init__.py`` by the tests. Violations:
``Ghost`` is exported but never bound, ``Widget`` is listed twice, the
list is unsorted, and the public bindings ``build_widget`` and
``FACTOR`` are missing from ``__all__``.
"""

from repro.widgets.core import Widget, build_widget

FACTOR = 2.0

__all__ = [
    "Widget",
    "Ghost",
    "Widget",
]
