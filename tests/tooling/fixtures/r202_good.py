"""Good package __init__: sorted, bound, complete export surface."""

from repro.widgets.core import Widget, build_widget

_FACTOR = 2.0

__all__ = [
    "Widget",
    "build_widget",
]
