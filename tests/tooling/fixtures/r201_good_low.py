"""Good: the low layer reaches up only through a lazy import."""


def base():
    from repro.beta import summit

    return summit() - 1
