"""R004 known-bad fixture: vectorized paths missing their contracts."""


def scan_fleet(temperatures_c, threshold_c):
    """No scalar ``scan`` anywhere in scope, no parity declaration."""
    return [t for t in temperatures_c if t > threshold_c]


def rank_batch(rows):
    """Scalar twin exists below, but no test references ``rank_batch``."""
    return sorted(range(len(rows)), key=rows.__getitem__)


def rank(row):
    return row
