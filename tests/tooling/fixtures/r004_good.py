"""R004 known-good fixture: both contracts satisfied both ways."""


def scan_fleet(temperatures_c, threshold_c):
    """Vectorized hot-server scan.

    The scalar twin ``scan`` lives in this module; the corpus test file
    pins the pair.
    """
    return [t for t in temperatures_c if scan(t, threshold_c)]


def scan(temperature_c, threshold_c):
    return temperature_c > threshold_c


def score_batch(rows):
    """Twin lives in another module — declared explicitly.

    Parity: fixture.other.score_rows
    """
    return [sum(row) for row in rows]


def failure_spec(n):
    """Declarative twin of a hand-coded builder — name carries no suffix.

    Parity: fixture.hand.failure_scenario
    """
    return {"n": n}
