"""Good: every FleetState array store is covered by a generation bump.

Same miniature as the bad fixture with the contract honored: direct
bumps on all paths, placement-class stores going through
``_bump_placement``, a private helper rescued by its bumping call site,
and the outside view either routing through a mutator or bumping the
receiver explicitly.
"""

import numpy as np

_SERVER_FLOAT_FIELDS = ("t_cpu_c", "used_memory_gb")
_SERVER_INT_FIELDS = ("used_vcpus", "n_running", "server_generation")


class FleetState:
    def __init__(self):
        for name in _SERVER_FLOAT_FIELDS:
            setattr(self, name, np.zeros(0, dtype=float))
        for name in _SERVER_INT_FIELDS:
            setattr(self, name, np.zeros(0, dtype=np.int64))
        self.vm_state_code = np.zeros(0, dtype=np.int8)
        self.generation = 0
        self.placement_generation = 0

    def set_temperature(self, slot, value):
        self.t_cpu_c[slot] = value
        self.generation += 1

    def host_vm(self, slot, vcpus):
        self.used_vcpus[slot] += vcpus
        self._rebase(slot)
        self._bump_placement(slot)

    def transition(self, slot, running):
        self.vm_state_code[slot] = 1
        if running:
            self.n_running[slot] += 1
        self._bump_placement(slot)

    def _rebase(self, slot):
        # No bump here: the only call site bumps right after (rescue).
        self.t_cpu_c[slot] = 0.0

    def _bump_placement(self, slot):
        self.server_generation[slot] += 1
        self.placement_generation += 1
        self.generation += 1


class ServerView:
    def __init__(self, fs, slot):
        self._fs = fs
        self._slot = slot

    def force_temperature(self, value):
        self._fs.set_temperature(self._slot, value)

    def force_memory(self, value):
        fs = self._fs
        fs.used_memory_gb[self._slot] = value
        fs.placement_generation += 1
        fs.generation += 1
