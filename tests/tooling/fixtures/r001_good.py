"""R001 known-good fixture: all randomness is derived from named seeds."""

import random

import numpy as np

from repro.rng import RngFactory, derive_seed


def jitter_arrivals(times_s, root_seed: int):
    stream = RngFactory(root_seed).stream("arrivals")
    offset = stream.uniform(0.0, 5.0)
    rng = np.random.default_rng(derive_seed(root_seed, "noise"))
    noise = rng.normal(0.0, 1.0, size=len(times_s))
    seeded = random.Random(derive_seed(root_seed, "aux"))
    return offset, noise, seeded
