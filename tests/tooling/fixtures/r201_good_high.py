"""Good: the high layer eagerly imports downward only."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: not an eager edge
    from repro.alpha import base


def summit():
    return 1
