"""Good: every public def is reachable (test, __all__, or private).

``caller`` is imported by the accompanying test file, ``exported`` is
in ``__all__``, ``main`` is a sanctioned entry point, and the helper is
private.
"""

__all__ = ["exported"]


def exported(x):
    return _helper(x)


def _helper(x):
    return x + 1


def caller(x):
    return exported(x)


def main():
    return caller(0)
