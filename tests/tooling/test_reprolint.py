"""Each reprolint rule fires on its known-bad fixture and stays silent
on the known-good one, plus waiver/baseline/CLI semantics.

Fixture files live in ``fixtures/`` (excluded from real lint runs);
tests copy them into a throwaway mini-repo layout under ``tmp_path``
because rule scoping (``src/`` vs ``tests/``) is part of what is under
test.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import run_lint
from tools.reprolint.baseline import load_baseline, save_baseline
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.engine import finding_fingerprints

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def mini_repo(tmp_path: Path, files: dict[str, str]) -> Path:
    """Lay out ``files`` (rel path → content or fixtures/<name> source)."""
    for rel, content in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        fixture = FIXTURES / content
        target.write_text(
            fixture.read_text() if fixture.is_file() else content
        )
    return tmp_path


def lint(root: Path, *, rules: str, strict: bool = False, paths=("src", "tests")):
    present = [p for p in paths if (root / p).is_dir()]
    return run_lint(present, root=root, strict=strict, select=set(rules.split(",")))


class TestR001Determinism:
    def test_fires_on_global_rng_and_wall_clock(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/jitter.py": "r001_bad.py"})
        findings = lint(root, rules="R001").active()
        blurbs = "\n".join(f.message for f in findings)
        assert len(findings) == 6
        assert "from random import shuffle" in blurbs
        assert "random.uniform" in blurbs
        assert "np.random.normal" in blurbs
        assert "default_rng() without a seed" in blurbs
        assert "time.time()" in blurbs
        assert "unseeded random.Random()" in blurbs

    def test_silent_on_seeded_streams(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/jitter.py": "r001_good.py"})
        assert lint(root, rules="R001").active() == []

    def test_scoped_to_src_only(self, tmp_path):
        root = mini_repo(tmp_path, {"tests/helper_rand.py": "r001_bad.py"})
        assert lint(root, rules="R001").active() == []


class TestR002SnapshotAliasing:
    def test_fires_on_pr5_registry_bug_in_miniature(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/registry.py": "r002_bad.py"})
        findings = lint(root, rules="R002").active()
        assert len(findings) == 3  # MiniEntry.model, .scaler, keyed stash
        assert all("PR 5" in f.message for f in findings)
        stores = {f.message.split(" stores fitted component ")[0] for f in findings}
        assert stores == {"MiniEntry.__init__", "MiniRegistry.stash_default"}

    def test_silent_when_snapshotted(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/registry.py": "r002_good.py"})
        assert lint(root, rules="R002").active() == []

    def test_annotation_marks_estimator_params_too(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/holder.py": (
                    "class Holder:\n"
                    "    def adopt(self, fitted: 'EpsilonSVR'):\n"
                    "        self.current = fitted\n"
                )
            },
        )
        findings = lint(root, rules="R002").active()
        assert len(findings) == 1
        assert "'fitted'" in findings[0].message


class TestR003UnitSuffix:
    def test_fires_on_every_mixing_shape(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/units.py": "r003_bad.py"})
        findings = lint(root, rules="R003").active()
        blurbs = "\n".join(f.message for f in findings)
        assert len(findings) == 5
        assert "additive arithmetic mixes" in blurbs
        assert "comparison mixes" in blurbs
        assert "assignment crosses" in blurbs
        assert "augmented assignment mixes" in blurbs
        assert "keyword 'deadline_s'" in blurbs

    def test_silent_on_consistent_units_and_conversions(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/units.py": "r003_good.py"})
        assert lint(root, rules="R003").active() == []

    def test_tests_scanned_only_under_strict(self, tmp_path):
        root = mini_repo(tmp_path, {"tests/helper_units.py": "r003_bad.py"})
        assert lint(root, rules="R003").active() == []
        assert len(lint(root, rules="R003", strict=True).active()) == 5


class TestR004ParityPairs:
    def test_fires_on_missing_counterpart_and_missing_test(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/eng.py": "r004_bad.py",
                "tests/test_unrelated.py": "def test_nothing():\n    pass\n",
            },
        )
        findings = lint(root, rules="R004").active()
        assert len(findings) == 2
        blurbs = "\n".join(f.message for f in findings)
        assert "no scalar counterpart 'scan'" in blurbs
        assert "no test under tests//benchmarks/ references 'rank_batch'" in blurbs

    def test_silent_with_twin_and_pinned_test(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/eng.py": "r004_good.py",
                "tests/test_eng_parity.py": "r004_parity_corpus.py",
            },
        )
        assert lint(root, rules="R004").active() == []
        assert lint(root, rules="R004", strict=True).active() == []

    def test_strict_requires_both_names_in_one_file(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/eng.py": "r004_good.py",
                # fleet names referenced here, scalar twins only elsewhere:
                "tests/test_eng_fleet.py": (
                    "from repro.eng import failure_spec, scan_fleet, score_batch\n"
                    "def test_runs():\n"
                    "    assert scan_fleet([80.0], 75.0) and score_batch([[1]])\n"
                    "    assert failure_spec(1)\n"
                ),
                "tests/test_eng_scalar.py": (
                    "from repro.eng import scan\n"
                    "score_rows = sum\n"
                    "failure_scenario = dict\n"
                    "def test_scalar():\n"
                    "    assert scan(80.0, 75.0) and score_rows([1])\n"
                    "    assert failure_scenario(n=1)\n"
                ),
            },
        )
        assert lint(root, rules="R004").active() == []
        strict = lint(root, rules="R004", strict=True).active()
        assert len(strict) == 3
        assert all("no single test file references both" in f.message for f in strict)

    def test_declared_parity_def_requires_pinned_test(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/eng.py": (
                    "def cool_spec():\n"
                    '    """Parity: repro.hand.cool_scenario"""\n'
                    "    return {}\n"
                ),
                "tests/test_unrelated.py": "def test_nothing():\n    pass\n",
            },
        )
        findings = lint(root, rules="R004").active()
        assert len(findings) == 1
        assert "references 'cool_spec'" in findings[0].message


class TestWaivers:
    def test_trailing_waiver_with_reason_suppresses(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/a.py": (
                    "import time\n"
                    "t = time.time()  # reprolint: waive R001 -- banner only\n"
                )
            },
        )
        result = lint(root, rules="R001")
        assert result.active() == []
        assert [f.waive_reason for f in result.findings] == ["banner only"]

    def test_own_line_waiver_skips_comment_block_to_next_code_line(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/a.py": (
                    "import time\n"
                    "# reprolint: waive R001 -- long justification that\n"
                    "# continues on a second comment line\n"
                    "t = time.time()\n"
                )
            },
        )
        assert lint(root, rules="R001").active() == []

    def test_file_waive_covers_whole_file(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/a.py": (
                    "# reprolint: file-waive R001 -- CLI timing prints only\n"
                    "import time\n"
                    "t0 = time.time()\n"
                    "t1 = time.time()\n"
                )
            },
        )
        result = lint(root, rules="R001")
        assert result.active() == []
        assert len([f for f in result.findings if f.waived]) == 2

    def test_empty_reason_waiver_is_itself_an_error(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/a.py": (
                    "import time\n"
                    "t = time.time()  # reprolint: waive R001\n"
                )
            },
        )
        result = lint(root, rules="R001")
        rules_hit = {f.rule for f in result.active()}
        assert rules_hit == {"W000", "R001"}  # waiver invalid AND not applied

    def test_strict_flags_unused_waivers(self, tmp_path):
        root = mini_repo(
            tmp_path,
            {
                "src/repro/a.py": (
                    "x = 1  # reprolint: waive R001 -- nothing to suppress\n"
                )
            },
        )
        assert lint(root, rules="R001").active() == []
        strict = lint(root, rules="R001", strict=True).active()
        assert [f.rule for f in strict] == ["W001"]


class TestBaselineAndReporters:
    def test_baseline_roundtrip_suppresses_known_findings(self, tmp_path):
        root = mini_repo(tmp_path, {"src/repro/units.py": "r003_bad.py"})
        first = lint(root, rules="R003")
        assert len(first.active()) == 5
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, finding_fingerprints(first, root))
        assert len(load_baseline(baseline_path)) > 0
        second = run_lint(
            ["src"], root=root, select={"R003"}, baseline_path=baseline_path
        )
        assert second.active() == []
        assert second.baselined == 5

    def test_json_reporter_via_cli(self, tmp_path, capsys):
        root = mini_repo(tmp_path, {"src/repro/units.py": "r003_bad.py"})
        code = reprolint_main(
            ["--root", str(root), "--select", "R003", "--no-baseline",
             "--format", "json", "src"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] == 5
        assert {f["rule"] for f in payload["findings"]} == {"R003"}

    def test_update_baseline_then_clean_exit(self, tmp_path, capsys):
        root = mini_repo(tmp_path, {"src/repro/units.py": "r003_bad.py"})
        baseline_path = tmp_path / "baseline.json"
        assert reprolint_main(
            ["--root", str(root), "--select", "R003",
             "--baseline", str(baseline_path), "--update-baseline", "src"]
        ) == 0
        capsys.readouterr()
        assert reprolint_main(
            ["--root", str(root), "--select", "R003",
             "--baseline", str(baseline_path), "src"]
        ) == 0


class TestAcceptance:
    def test_reprolint_clean_on_this_tree(self):
        """`python -m tools.reprolint src tests` exits 0 on the final tree."""
        result = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s)" in result.stdout

    def test_strict_whole_repo_scan_clean_on_this_tree(self):
        """The nightly `--strict` parity scan over tests/ passes too."""
        result = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--strict",
             "src", "tests", "benchmarks"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_shipped_baseline_is_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "tools" / "reprolint" / "baseline.json").read_text()
        )
        assert baseline["findings"] == []

    def test_rule_catalog_lists_all_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        for rule_id in ("R001", "R002", "R003", "R004", "R101", "W000"):
            assert rule_id in result.stdout
