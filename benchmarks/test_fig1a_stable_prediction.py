"""Benchmark: regenerate Fig. 1(a) — stable CPU temperature prediction.

Paper: "the model is capable of predicting stable CPU temperature with an
average Mean Squared Error (MSE) value within 1.10" over 20 randomized
experiment cases with 2–12 VMs.

Full pipeline: 150 randomized training experiments + 20 test cases are
simulated, the ε-SVR is grid-searched with 10-fold CV (easygrid-style),
and the 20 held-out cases are predicted.
"""

from repro.experiments.figures import build_fig1a
from repro.experiments.reporting import format_fig1a

from benchmarks.conftest import record_table


def test_fig1a_stable_prediction(benchmark):
    result = benchmark.pedantic(
        lambda: build_fig1a(n_train=150, n_test=20, n_folds=10, seed=7),
        rounds=1,
        iterations=1,
    )
    record_table("Fig 1(a) stable prediction", format_fig1a(result))

    # Paper shape: 20 cases, 2-12 VMs, average MSE within 1.10.
    assert len(result.cases) == 20
    assert all(2 <= case.n_vms <= 12 for case in result.cases)
    assert result.mse <= 1.10, (
        f"average stable-prediction MSE {result.mse:.3f} exceeds the "
        "paper's 1.10 band"
    )
    # Predictions must track, not merely average: every case within a few
    # degrees and the bulk much closer.
    errors = sorted(case.squared_error for case in result.cases)
    assert errors[len(errors) // 2] < 0.75  # median squared error
    assert max(errors) < 16.0  # no catastrophic outlier (4 °C)
