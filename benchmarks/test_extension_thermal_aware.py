"""Extension benchmark: prediction-driven thermal-aware placement.

The paper's introduction motivates temperature prediction as the basis of
proactive thermal management — "minimizing temperature distribution
disparity ... to reduce the probability of hotspot occurrence". This
benchmark closes that loop: place an arrival stream of VMs with (a)
first-fit packing, (b) load-spreading worst-fit, and (c) our
prediction-driven scheduler, then compare peak temperature, spread,
hotspots, and estimated cooling power.
"""

from repro.datacenter.cluster import Cluster
from repro.datacenter.scheduler import FirstFitScheduler, WorstFitScheduler
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.experiments.reporting import ascii_table
from repro.management.energy import CoolingModel
from repro.management.hotspot import HotspotDetector
from repro.management.thermal_aware import ThermalAwareScheduler
from repro.rng import RngFactory
from repro.thermal.environment import ConstantEnvironment
from tests.conftest import make_server_spec, make_vm

from benchmarks.conftest import record_table

N_SERVERS = 8
N_VMS = 28


def arrival_stream():
    vms = []
    for i in range(N_VMS):
        level = 0.55 + 0.4 * ((i * 7) % 10) / 10.0
        vms.append(make_vm(f"vm-{i}", vcpus=4, memory_gb=4.0, level=level, n_tasks=4))
    return vms


def run_policy(scheduler):
    cluster = Cluster("ext")
    for i in range(N_SERVERS):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    sim = DatacenterSimulation(
        cluster=cluster, environment=ConstantEnvironment(22.0), rng=RngFactory(2)
    )
    sim.equalize_temperatures()
    for vm in arrival_stream():
        scheduler.place(vm, cluster).host_vm(vm)
    sim.run(1500.0)
    temps = {s.name: s.thermal.cpu_temperature_c for s in cluster.servers}
    it_power = sum(
        s.thermal.power_model.power(
            sim.telemetry.for_server(s.name).utilization.mean()
        )
        for s in cluster.servers
    )
    cooling = CoolingModel().cooling_power_w(it_power, supply_temperature_c=15.0)
    return {
        "peak": max(temps.values()),
        "spread": max(temps.values()) - min(temps.values()),
        "hotspots": len(HotspotDetector(threshold_c=75.0).detect(temps)),
        "cooling_w": cooling,
    }


def test_extension_thermal_aware_placement(benchmark, stable_model):
    def run():
        return {
            "first-fit (packing)": run_policy(FirstFitScheduler()),
            "worst-fit (spreading)": run_policy(WorstFitScheduler()),
            "thermal-aware (ours)": run_policy(
                ThermalAwareScheduler(
                    stable_model,
                    environment_c=22.0,
                    detector=HotspotDetector(threshold_c=75.0),
                )
            ),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (name, o["peak"], o["spread"], o["hotspots"], o["cooling_w"])
        for name, o in outcomes.items()
    ]
    record_table(
        "Extension: thermal-aware placement (8 servers, 28 VMs)",
        ascii_table(["policy", "peak °C", "spread °C", "hotspots", "cooling W"], rows),
    )

    aware = outcomes["thermal-aware (ours)"]
    packed = outcomes["first-fit (packing)"]
    # The prediction-driven policy must beat naive packing on every
    # thermal axis.
    assert aware["peak"] < packed["peak"] - 3.0
    assert aware["spread"] < packed["spread"]
    assert aware["hotspots"] <= packed["hotspots"]
    # And be at least competitive with blind spreading on peak.
    spread_policy = outcomes["worst-fit (spreading)"]
    assert aware["peak"] <= spread_policy["peak"] + 1.0
