"""Fleet prediction service benchmarks.

Documents the serving-layer headline claim: at 128 servers the
:class:`~repro.serving.fleet.PredictionFleet` runs the paper's online
loop (Δ_update calibration + Δ_gap-ahead forecasting, with batched
ψ_stable seeding and mid-run retargeting) ≥5× faster than the per-VM
prediction loop — with bit-identical forecasts. Also records the
cross-model batched SVR throughput vs point calls.
"""

import time

import numpy as np

from benchmarks.conftest import record_table
from repro.config import PredictionConfig
from repro.core.curve import PredefinedCurve
from repro.core.dynamic import DynamicTemperaturePredictor
from repro.core.stable import StableTemperaturePredictor
from repro.serving import ModelRegistry, PredictionFleet, predict_batch
from repro.serving.batch import PredictionRequest
from tests.conftest import make_record

N_SERVERS = 128
N_STEPS = 240  # 20 simulated minutes of 5 s sensor samples
RETARGET_STEP = 100

CONFIG = PredictionConfig()


def _stable_model() -> StableTemperaturePredictor:
    """A compact trained stable model (synthetic records, no simulation)."""
    records = [
        make_record(
            psi=38.0 + 0.35 * i + 2.0 * (i % 7),
            n_vms=2 + i % 10,
            util=0.2 + 0.006 * i,
            env=18.0 + i % 9,
            fan_count=2 + 2 * (i % 4),
        )
        for i in range(90)
    ]
    return StableTemperaturePredictor(c=64.0, gamma=0.125, epsilon=0.125).fit(records)


def _workload(seed: int = 9):
    """Server records plus deterministic synthetic sensor traces."""
    rng = np.random.default_rng(seed)
    records = [
        make_record(psi=None, n_vms=2 + i % 8, util=0.25 + 0.004 * i, env=20.0 + i % 5)
        for i in range(N_SERVERS)
    ]
    retarget_records = [
        make_record(psi=None, n_vms=4 + i % 6, util=0.5 + 0.003 * i)
        for i in range(N_SERVERS // 2)
    ]
    t0 = rng.uniform(0.0, 4.0, N_SERVERS)
    first = rng.uniform(34.0, 44.0, N_SERVERS)
    times = t0[None, :] + 5.0 * np.arange(1, N_STEPS + 1)[:, None]
    times = times + rng.uniform(-0.3, 0.3, times.shape)  # jittered sensors
    traces = (
        first[None, :]
        + 18.0 * (1.0 - np.exp(-np.arange(1, N_STEPS + 1)[:, None] * 5.0 / 400.0))
        + rng.normal(0.0, 0.3, times.shape)
    )
    return records, retarget_records, t0, first, times, traces


def _run_scalar_loop(predictor, records, retarget_records, t0, first, times, traces):
    """The per-VM baseline: one point ψ_stable call and one
    DynamicTemperaturePredictor per server, stepped in Python."""
    dynamics = []
    for i in range(N_SERVERS):
        curve = PredefinedCurve(
            phi_0=float(first[i]),
            psi_stable=predictor.predict(records[i]),
            t_break_s=CONFIG.t_break_s,
            delta=CONFIG.curve_delta,
            origin_s=float(t0[i]),
        )
        dynamics.append(DynamicTemperaturePredictor(curve, config=CONFIG))
    out = np.empty((N_STEPS, N_SERVERS))
    for k in range(N_STEPS):
        if k == RETARGET_STEP:
            for i, record in enumerate(retarget_records):
                dynamics[i].retarget(
                    float(times[k, i]), float(traces[k, i]), predictor.predict(record)
                )
        for i, dyn in enumerate(dynamics):
            t = float(times[k, i])
            dyn.observe(t, float(traces[k, i]))
            out[k, i] = dyn.predict_ahead(t).predicted_c
    return out


def _run_fleet(registry, records, retarget_records, t0, first, times, traces):
    """The serving path: one PredictionFleet, batched end to end."""
    fleet = PredictionFleet(registry, CONFIG)
    names = [f"s{i}" for i in range(N_SERVERS)]
    fleet.track(names, records, t0, first)
    out = np.empty((N_STEPS, N_SERVERS))
    for k in range(N_STEPS):
        if k == RETARGET_STEP:
            half = names[: N_SERVERS // 2]
            fleet.retarget(
                half,
                retarget_records,
                times[k, : N_SERVERS // 2],
                traces[k, : N_SERVERS // 2],
            )
        fleet.observe(times[k], traces[k])
        _, out[k] = fleet.predict_ahead(times[k])
    return out


def test_prediction_fleet_speedup_128_servers():
    """Acceptance: ≥5× serving throughput at 128 servers, bit-identical
    forecasts vs the per-VM prediction loop."""
    predictor = _stable_model()
    registry = ModelRegistry()
    registry.register("default", predictor)
    workload = _workload()

    scalar_elapsed = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_out = _run_scalar_loop(predictor, *workload)
        scalar_elapsed = min(scalar_elapsed, time.perf_counter() - start)
    fleet_elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fleet_out = _run_fleet(registry, *workload)
        fleet_elapsed = min(fleet_elapsed, time.perf_counter() - start)

    speedup = scalar_elapsed / fleet_elapsed
    forecasts = N_SERVERS * N_STEPS
    identical = np.array_equal(scalar_out, fleet_out)
    rows = [
        f"{'path':<26}{'walltime':>12}{'forecasts/s':>16}",
        f"{'per-VM loop':<26}{scalar_elapsed * 1e3:>10.1f}ms"
        f"{forecasts / scalar_elapsed:>16,.0f}",
        f"{'prediction fleet':<26}{fleet_elapsed * 1e3:>10.1f}ms"
        f"{forecasts / fleet_elapsed:>16,.0f}",
        "",
        f"speedup: {speedup:.1f}x (acceptance: >= 5x)",
        f"bit-identical forecasts: {identical}",
    ]
    record_table(
        f"prediction fleet: serving throughput ({N_SERVERS} servers)",
        "\n".join(rows),
    )
    assert identical, "fleet forecasts diverge from the per-VM loop"
    assert speedup >= 5.0, f"prediction fleet speedup {speedup:.1f}x below 5x"


def test_batched_stable_inference_throughput():
    """Cross-model batched ψ_stable queries vs point calls (retarget wave)."""
    predictor = _stable_model()
    registry = ModelRegistry()
    registry.register("default", predictor)
    records = [
        make_record(psi=None, n_vms=2 + i % 9, util=0.3 + 0.002 * i)
        for i in range(N_SERVERS)
    ]
    requests = [PredictionRequest("default", r) for r in records]

    start = time.perf_counter()
    for _ in range(5):
        looped = np.array([predictor.predict(r) for r in records])
    point_elapsed = (time.perf_counter() - start) / 5
    start = time.perf_counter()
    for _ in range(5):
        batched = predict_batch(registry, requests)
    batch_elapsed = (time.perf_counter() - start) / 5

    rows = [
        f"{'path':<26}{'walltime':>12}",
        f"{'point calls':<26}{point_elapsed * 1e3:>10.2f}ms",
        f"{'predict_batch':<26}{batch_elapsed * 1e3:>10.2f}ms",
        "",
        f"speedup: {point_elapsed / batch_elapsed:.1f}x",
        f"bit-identical: {np.array_equal(looped, batched)}",
    ]
    record_table(
        f"prediction fleet: batched stable inference ({N_SERVERS} records)",
        "\n".join(rows),
    )
    assert np.array_equal(looped, batched)
    assert batch_elapsed < point_elapsed
