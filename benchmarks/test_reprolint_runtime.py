"""Lint-runtime floor: the whole-program layer must stay cheap.

PR 10 moved reprolint from file-local rules to a project graph (import
graph + symbol table) shared by R005/R201/R202/R203. That graph is
built once per run and amortised across rules — this benchmark pins the
cost so the tier-1 gate (which lints every push) never quietly becomes
the slow step. Two timings:

* the full default sweep (``src tests``, all rules);
* the project rules alone (``--select`` R005,R201,R202,R203), which
  bounds what the whole-program layer itself adds.

``REPROLINT_BENCH_SMOKE=1`` keeps one repetition and a relaxed budget
for tier-1 runners; the nightly job runs the full repetitions against
the tight floor.
"""

import os
import time
from pathlib import Path

from benchmarks.conftest import record_json, record_table

from tools.reprolint import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = bool(os.environ.get("REPROLINT_BENCH_SMOKE"))
REPS = 1 if SMOKE else 3
#: Walltime budget for one full default sweep (all rules, src+tests).
BUDGET_S = 60.0 if SMOKE else 30.0
PROJECT_RULES = {"R005", "R201", "R202", "R203"}


def _timed(select=None) -> tuple[float, int]:
    best = float("inf")
    n_files = 0
    for _ in range(REPS):
        start = time.perf_counter()
        result = run_lint(
            ["src", "tests"], root=REPO_ROOT, select=select
        )
        best = min(best, time.perf_counter() - start)
        n_files = result.n_files
        assert result.errors() == []  # the tree the benchmark times is clean
    return best, n_files


def test_reprolint_runtime_floor():
    """Acceptance: a full default sweep stays inside the walltime
    budget, and the whole-program rules cost no more than the sweep."""
    full_s, n_files = _timed()
    project_s, _ = _timed(select=PROJECT_RULES)

    assert full_s < BUDGET_S, (
        f"full reprolint sweep took {full_s:.2f}s "
        f"(budget {BUDGET_S:.0f}s) over {n_files} files"
    )
    assert project_s <= full_s * 1.5  # graph layer is not the dominant cost

    lines = [
        f"{'sweep':>24} {'walltime s':>12}",
        f"{'all rules':>24} {full_s:>12.3f}",
        f"{'project rules only':>24} {project_s:>12.3f}",
        f"{n_files} files, {REPS} rep(s), budget {BUDGET_S:.0f}s"
        f"{', smoke scale' if SMOKE else ''}",
    ]
    record_table("reprolint runtime floor (whole-program layer)", "\n".join(lines))
    record_json(
        "BENCH_reprolint.json",
        {
            "benchmark": "reprolint-runtime",
            "smoke": SMOKE,
            "n_files": n_files,
            "reps": REPS,
            "budget_s": BUDGET_S,
            "full_sweep_s": round(full_s, 4),
            "project_rules_s": round(project_s, 4),
        },
    )
