"""Shared fixtures and reporting for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures (or one of
our ablations) and asserts the *shape* of the result — who wins, rough
factors, monotone trends — per the reproduction contract in DESIGN.md.

Result tables are written to ``benchmark_results/`` and echoed in the
pytest terminal summary so that ``pytest benchmarks/ --benchmark-only``
leaves a readable record.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.figures import train_default_stable_model
from repro.experiments.runner import profile_records
from repro.experiments.scenarios import random_scenarios

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"

_tables: list[tuple[str, str]] = []


def slugify_title(title: str) -> str:
    """Benchmark title → portable filename stem.

    Only ``[a-z0-9-]`` survives (runs of anything else collapse to one
    ``_``): colons and parentheses are invalid in Windows filenames, and
    the historical ``title.lower().replace(" ", "_")`` slugs produced
    names like ``ablation:_calibration_learning_rate.txt``.
    """
    slug = re.sub(r"[^a-z0-9-]+", "_", title.lower()).strip("_")
    return slug or "untitled"


def record_table(title: str, text: str) -> None:
    """Register a result table for the terminal summary and write it out."""
    _tables.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{slugify_title(title)}.txt").write_text(text + "\n")


def record_json(filename: str, payload: dict) -> None:
    """Write a machine-readable benchmark result to ``benchmark_results/``.

    Companion to :func:`record_table` for results that downstream tooling
    (CI trend tracking, the scale-sweep gate) consumes programmatically;
    ``filename`` is taken verbatim (e.g. ``BENCH_fleetstate.json``).
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def pytest_terminal_summary(terminalreporter):
    if not _tables:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduction results (paper vs measured)")
    for title, text in _tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def stable_model_report():
    """Full-scale stable model shared by the dynamic-figure benchmarks."""
    return train_default_stable_model(n_train=120, seed=7, n_folds=5)


@pytest.fixture(scope="session")
def stable_model(stable_model_report):
    """The trained predictor from :func:`stable_model_report`."""
    return stable_model_report.predictor


@pytest.fixture(scope="session")
def labelled_records():
    """A labelled dataset (120 train-scale records) for model-comparison
    benchmarks; distinct seed block from the figure builders."""
    scenarios = random_scenarios(120, base_seed=400_000, n_vms_range=(2, 12))
    return profile_records(scenarios)


@pytest.fixture(scope="session")
def heldout_records():
    """Held-out labelled records matching :func:`labelled_records`."""
    scenarios = random_scenarios(30, base_seed=470_000, n_vms_range=(2, 12))
    return profile_records(scenarios)
