"""Shared fixtures and reporting for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures (or one of
our ablations) and asserts the *shape* of the result — who wins, rough
factors, monotone trends — per the reproduction contract in DESIGN.md.

Result tables are written to ``benchmark_results/`` and echoed in the
pytest terminal summary so that ``pytest benchmarks/ --benchmark-only``
leaves a readable record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.figures import train_default_stable_model
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import random_scenarios

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"

_tables: list[tuple[str, str]] = []


def record_table(title: str, text: str) -> None:
    """Register a result table for the terminal summary and write it out."""
    _tables.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _tables:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduction results (paper vs measured)")
    for title, text in _tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def stable_model_report():
    """Full-scale stable model shared by the dynamic-figure benchmarks."""
    return train_default_stable_model(n_train=120, seed=7, n_folds=5)


@pytest.fixture(scope="session")
def stable_model(stable_model_report):
    """The trained predictor from :func:`stable_model_report`."""
    return stable_model_report.predictor


@pytest.fixture(scope="session")
def labelled_records():
    """A labelled dataset (120 train-scale records) for model-comparison
    benchmarks; distinct seed block from the figure builders."""
    scenarios = random_scenarios(120, base_seed=400_000, n_vms_range=(2, 12))
    return [run_experiment(s).record for s in scenarios]


@pytest.fixture(scope="session")
def heldout_records():
    """Held-out labelled records matching :func:`labelled_records`."""
    scenarios = random_scenarios(30, base_seed=470_000, n_vms_range=(2, 12))
    return [run_experiment(s).record for s in scenarios]
