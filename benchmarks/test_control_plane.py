"""Control-plane benchmarks.

Documents the management-layer headline claim: scoring every candidate
(VM, destination) mitigation move for a 128-server cluster through the
shared batched what-if path (:mod:`repro.management.whatif`) is ≥5×
faster than the scalar per-candidate loop the advisor/scheduler used to
run — with **bit-identical** scores, because ``EpsilonSVR.predict`` is
batch-composition independent (each hypothetical record sees the same
feature extraction, scaling, and kernel arithmetic whether it is scored
alone or in a 7000-row matrix).

``CONTROL_BENCH_SMOKE=1`` shrinks the cluster to a CI smoke (fewer
sources/destinations leave proportionally more Python fixed cost in the
batched path, so the floor relaxes to 3×).
"""

import os
import time

import numpy as np

from benchmarks.conftest import record_table
from repro.core.stable import StableTemperaturePredictor
from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.management.whatif import WhatIfScorer, enumerate_evictions, record_for_host
from tests.conftest import make_record, make_server_spec, make_vm

SMOKE = bool(os.environ.get("CONTROL_BENCH_SMOKE"))
N_SERVERS = 32 if SMOKE else 128
N_HOT = 4 if SMOKE else 16
VMS_PER_HOT = 4
SPEEDUP_FLOOR = 3.0 if SMOKE else 5.0
REPEATS = 1 if SMOKE else 2
ENVIRONMENT_C = 24.0


def _stable_model() -> StableTemperaturePredictor:
    """A compact trained stable model (synthetic records, no simulation)."""
    records = [
        make_record(
            psi=38.0 + 0.35 * i + 2.0 * (i % 7),
            n_vms=2 + i % 10,
            util=0.2 + 0.006 * i,
            env=18.0 + i % 9,
            fan_count=2 + 2 * (i % 4),
        )
        for i in range(90)
    ]
    return StableTemperaturePredictor(c=64.0, gamma=0.125, epsilon=0.125).fit(records)


def _build_cluster() -> tuple[Cluster, list[str]]:
    """A fleet with ``N_HOT`` loaded servers and cool spares with headroom."""
    cluster = Cluster("bench")
    hot_names = []
    for i in range(N_SERVERS):
        name = f"s{i:03d}"
        cluster.add_server(Server(make_server_spec(name=name)))
        server = cluster.server(name)
        if i < N_HOT:
            hot_names.append(name)
            for j in range(VMS_PER_HOT):
                server.host_vm(
                    make_vm(
                        f"{name}-vm{j}",
                        vcpus=2 + (i + j) % 3,
                        memory_gb=4.0 + (j % 2),
                        level=0.55 + 0.08 * (j % 4),
                        n_tasks=1 + (i + j) % 3,
                    )
                )
        else:
            server.host_vm(
                make_vm(f"{name}-bg", vcpus=1, memory_gb=2.0, level=0.2)
            )
    return cluster, hot_names


def _scalar_candidate_loop(predictor, cluster, hot_names):
    """The seed advisor structure: one ψ_stable point call per hypothetical
    record — "source without VM" once per VM, "destination with VM" per
    candidate pair — each through ``predict_many`` on a single record."""
    source_out = []
    dest_out = []
    for source_name in hot_names:
        source = cluster.server(source_name)
        for vm_name, vm in source.vms.items():
            without = predictor.predict_many(
                [record_for_host(source, ENVIRONMENT_C, without_vm=vm_name)]
            )[0]
            for destination in cluster.servers:
                if destination.name == source_name or not destination.can_host(vm):
                    continue
                with_vm = predictor.predict_many(
                    [record_for_host(destination, ENVIRONMENT_C, extra_vm=vm)]
                )[0]
                source_out.append(without)
                dest_out.append(with_vm)
    return np.array(source_out), np.array(dest_out)


def test_batched_candidate_scoring_speedup():
    """Acceptance: ≥5× candidate-scoring throughput at 128 servers,
    bit-identical to the per-host scalar path."""
    predictor = _stable_model()
    cluster, hot_names = _build_cluster()
    moves = enumerate_evictions(cluster, hot_names)
    scorer = WhatIfScorer(predictor)

    scalar_elapsed = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        scalar_source, scalar_dest = _scalar_candidate_loop(
            predictor, cluster, hot_names
        )
        scalar_elapsed = min(scalar_elapsed, time.perf_counter() - start)

    batch_elapsed = float("inf")
    for _ in range(REPEATS + 1):
        start = time.perf_counter()
        scores = scorer.score_moves(cluster, moves, ENVIRONMENT_C)
        batch_elapsed = min(batch_elapsed, time.perf_counter() - start)

    batched_source = np.array([s.predicted_source_c for s in scores])
    batched_dest = np.array([s.predicted_destination_c for s in scores])
    assert len(scores) == len(moves)
    identical = np.array_equal(scalar_source, batched_source) and np.array_equal(
        scalar_dest, batched_dest
    )
    speedup = scalar_elapsed / batch_elapsed

    rows = [
        f"{'path':<30}{'walltime':>12}{'moves/s':>14}",
        f"{'per-candidate point calls':<30}{scalar_elapsed * 1e3:>10.1f}ms"
        f"{len(moves) / scalar_elapsed:>14,.0f}",
        f"{'batched what-if scorer':<30}{batch_elapsed * 1e3:>10.1f}ms"
        f"{len(moves) / batch_elapsed:>14,.0f}",
        "",
        f"candidate moves scored: {len(moves)} "
        f"({N_HOT} hot servers x {VMS_PER_HOT} VMs x spare destinations)",
        f"speedup: {speedup:.1f}x (acceptance: >= {SPEEDUP_FLOOR:.0f}x"
        f"{', smoke scale' if SMOKE else ''})",
        f"bit-identical scores: {identical}",
    ]
    record_table(
        f"control plane: batched candidate scoring ({N_SERVERS} servers)",
        "\n".join(rows),
    )
    assert identical, "batched what-if scores diverge from the scalar path"
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched candidate scoring speedup {speedup:.1f}x below "
        f"{SPEEDUP_FLOOR:.0f}x"
    )
