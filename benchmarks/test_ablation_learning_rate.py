"""Ablation: calibration learning rate λ (the paper fixes λ = 0.8).

Sweeps λ from 0 (no calibration) to 1 (jump to last offset) on the
Fig. 1(b) scenario and reports dynamic MSE. The paper's 0.8 should sit in
the flat, good region of the curve; λ=0 must be clearly worst.
"""

from repro.config import PredictionConfig
from repro.experiments.figures import build_fig1b
from repro.experiments.reporting import ascii_table

from benchmarks.conftest import record_table

LAMBDAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_ablation_learning_rate(benchmark, stable_model):
    def run():
        scores = {}
        for lam in LAMBDAS:
            config = PredictionConfig(learning_rate=lam)
            result = build_fig1b(stable_model, seed=42, config=config)
            scores[lam] = result.mse_calibrated
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [(f"λ={lam:.1f}" + (" (paper)" if lam == 0.8 else ""), mse)
            for lam, mse in scores.items()]
    record_table(
        "Ablation: calibration learning rate",
        ascii_table(["learning rate", "dynamic MSE"], rows),
    )

    # λ=0 disables calibration: must be the worst.
    assert scores[0.0] == max(scores.values())
    # The paper's λ=0.8 must be within 15% of the best sweep point.
    best = min(scores.values())
    assert scores[0.8] <= 1.15 * best, (
        f"paper's λ=0.8 scored {scores[0.8]:.3f}, best {best:.3f}"
    )
    # Any calibration at all beats none by a real margin.
    assert min(scores[0.4], scores[0.6], scores[0.8]) < 0.9 * scores[0.0]
