"""Performance benchmarks of the substrates (simulator + solver).

These are conventional pytest-benchmark micro/meso benchmarks (multiple
rounds) rather than figure regenerations: they document the throughput a
downstream user can expect from the thermal plant, the co-simulation
loop, and the from-scratch SMO solver.
"""

import numpy as np

from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.rng import RngFactory
from repro.svm.kernels import RbfKernel
from repro.svm.smo import solve_svr_dual
from repro.thermal.fan import FanBank
from repro.thermal.power import CpuPowerModel
from repro.thermal.server_thermal import ServerThermalModel
from tests.conftest import make_server_spec, make_vm


def test_thermal_plant_step_throughput(benchmark):
    plant = ServerThermalModel(
        power_model=CpuPowerModel.for_capacity(total_ghz=38.4, memory_gb=64.0),
        fans=FanBank(count=4, speed=0.7),
    )

    def thousand_steps():
        for _ in range(1000):
            plant.step(1.0, 0.7, 22.0)

    benchmark(thousand_steps)
    assert plant.cpu_temperature_c > 22.0


def test_cosimulation_step_rate_16_servers(benchmark):
    def run_minute():
        cluster = Cluster("bench")
        for i in range(16):
            server = Server(make_server_spec(name=f"s{i}"))
            for j in range(4):
                server.host_vm(make_vm(f"vm-{i}-{j}", vcpus=2, level=0.6))
            cluster.add_server(server)
        sim = DatacenterSimulation(cluster=cluster, rng=RngFactory(1))
        sim.run(60.0)
        return sim

    sim = benchmark(run_minute)
    assert sim.time_s == 60.0


def test_smo_fit_200_samples(benchmark):
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(200, 10))
    y = 40.0 + 10.0 * x[:, 0] + 5.0 * np.sin(3.0 * x[:, 1])
    gram = RbfKernel(gamma=0.1).gram(x, x)

    result = benchmark(lambda: solve_svr_dual(gram, y, c=100.0, epsilon=0.1))
    assert result.converged


def test_rbf_gram_500x500(benchmark):
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(500, 18))
    kernel = RbfKernel(gamma=0.05)

    gram = benchmark(lambda: kernel.gram(x, x))
    assert gram.shape == (500, 500)
