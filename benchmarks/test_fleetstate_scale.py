"""Structure-of-arrays fleet-core scale sweep.

Documents the headline claim of the :mod:`repro.datacenter.fleetstate`
refactor: end-to-end co-simulation (load arbitration + thermal
integration + telemetry + sensor sampling) over the contiguous
fleet-state arrays beats the per-server object path by ≥4× at 512+
servers, and a 1024-server headline scenario completes inside a stated
walltime budget. The sweep writes both a human-readable table and the
machine-readable ``benchmark_results/BENCH_fleetstate.json`` consumed by
CI trend tracking.

``FLEETSTATE_BENCH_SMOKE=1`` shrinks the sweep for tier-1 runners
(small sizes, shorter horizon, relaxed floor); the nightly
``fleetstate-scale`` job runs the full 128→1024 sweep.
"""

import os
import time

from benchmarks.conftest import record_json, record_table
from repro.experiments.scenarios import (
    build_fleet_simulation,
    diurnal_fleet_scenario,
)

SMOKE = bool(os.environ.get("FLEETSTATE_BENCH_SMOKE"))
SIZES = (16, 32) if SMOKE else (128, 256, 512, 1024)
DURATION_S = 120.0 if SMOKE else 300.0
#: Sizes that must clear the acceptance speedup floor.
GATED_SIZES = () if SMOKE else (512, 1024)
SPEEDUP_FLOOR = 4.0
#: Walltime budget for the largest (headline) SoA run.
BUDGET_S = 20.0 if SMOKE else 60.0


def _timed_run(scenario, use_fleet: bool) -> float:
    sim = build_fleet_simulation(scenario, use_fleet_engine=use_fleet)
    start = time.perf_counter()
    sim.run(DURATION_S)
    return time.perf_counter() - start


def test_fleetstate_scale_sweep():
    """Acceptance: ≥4× end-to-end speedup at 512+ servers; the
    1024-server headline scenario lands inside the walltime budget."""
    rows = []
    for n_servers in SIZES:
        scenario = diurnal_fleet_scenario(
            n_servers=n_servers, duration_s=DURATION_S
        )
        object_s = _timed_run(scenario, use_fleet=False)
        soa_s = _timed_run(scenario, use_fleet=True)
        rows.append(
            {
                "n_servers": n_servers,
                "soa_walltime_s": round(soa_s, 4),
                "object_walltime_s": round(object_s, 4),
                "speedup": round(object_s / soa_s, 2),
            }
        )

    lines = [f"{'servers':>8} {'object s':>10} {'soa s':>8} {'speedup':>8}"]
    for row in rows:
        lines.append(
            f"{row['n_servers']:>8} {row['object_walltime_s']:>10.2f} "
            f"{row['soa_walltime_s']:>8.2f} {row['speedup']:>7.1f}x"
        )
    headline = rows[-1]
    lines.append(
        f"headline: {headline['n_servers']} servers, "
        f"{DURATION_S:.0f}s sim in {headline['soa_walltime_s']:.2f}s "
        f"(budget {BUDGET_S:.0f}s{', smoke scale' if SMOKE else ''})"
    )
    record_table("fleetstate scale sweep (soa vs object path)", "\n".join(lines))
    record_json(
        "BENCH_fleetstate.json",
        {
            "benchmark": "fleetstate-scale",
            "smoke": SMOKE,
            "sim_duration_s": DURATION_S,
            "speedup_floor": SPEEDUP_FLOOR,
            "gated_sizes": list(GATED_SIZES),
            "walltime_budget_s": BUDGET_S,
            "sizes": rows,
            "headline": headline,
        },
    )

    for row in rows:
        if row["n_servers"] in GATED_SIZES:
            assert row["speedup"] >= SPEEDUP_FLOOR, row
    assert headline["soa_walltime_s"] <= BUDGET_S, headline
