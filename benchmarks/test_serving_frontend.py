"""Closed-workload benchmark for the micro-batching serving front-end.

Documents the headline claim of the :mod:`repro.serving.frontend`
request-queue path: replaying a scenario-derived trace of single-record
prediction requests through the micro-batched, signature-cached
front-end beats the naive per-request ``predict_batch`` loop by ≥5× at
128 servers, while the virtual-latency scorecard (p50/p99, queue waits,
cache hit rate) stays inside the configured ``max_wait_s`` budget. The
run writes both a human-readable table and the machine-readable
``benchmark_results/BENCH_serving_frontend.json`` consumed by CI trend
tracking.

``SERVING_BENCH_SMOKE=1`` shrinks the workload for tier-1 runners
(32 servers, fewer requests, relaxed floor); the nightly
``serving-frontend-nightly`` job runs the full 128-server trace.
"""

import os
import time

import numpy as np

from benchmarks.conftest import record_json, record_table
from repro.core.stable import StableTemperaturePredictor
from repro.experiments.scenarios import class_balanced_fleet_scenario
from repro.serving.frontend import (
    FrontendConfig,
    PredictionFrontend,
    serve_naive,
    serve_trace,
)
from repro.serving.registry import ModelRegistry
from repro.serving.traces import trace_from_scenario
from repro.training import server_class_key
from tests.conftest import make_record

SMOKE = bool(os.environ.get("SERVING_BENCH_SMOKE"))
N_CLASSES = 4
SERVERS_PER_CLASS = 8 if SMOKE else 32  # 32 servers smoke, 128 full
N_REQUESTS = 1_500 if SMOKE else 12_000
#: Virtual arrival rate; the window is sized so micro-batches actually fill.
RATE_PER_S = 800.0
REPEATS = 2 if SMOKE else 3
SPEEDUP_FLOOR = 3.0 if SMOKE else 5.0
CONFIG = FrontendConfig(max_batch=64, max_wait_s=0.05)


def _class_model(seed: float) -> StableTemperaturePredictor:
    records = [
        make_record(
            psi=35.0 + seed + 1.5 * i, n_vms=2 + i % 7, util=0.15 + 0.04 * i
        )
        for i in range(18)
    ]
    return StableTemperaturePredictor(c=10.0, gamma=0.05, epsilon=0.1).fit(records)


def _build_workload():
    scenario = class_balanced_fleet_scenario(
        n_classes=N_CLASSES,
        servers_per_class=SERVERS_PER_CLASS,
        seed=93_000,
        duration_s=3600.0,
    )
    registry = ModelRegistry()
    registry.register("default", _class_model(0.0))
    for index, key in enumerate(
        sorted({server_class_key(spec) for spec in scenario.server_specs})
    ):
        registry.register(key, _class_model(4.0 + 3.0 * index))
    trace = trace_from_scenario(
        scenario,
        N_REQUESTS,
        duration_s=N_REQUESTS / RATE_PER_S,
        arrival="poisson",
        seed=17,
        # Classic 80/20 production skew: 1/8 of the servers draw 80% of
        # the queries — the shape that makes a result cache earn its keep.
        # Monitoring re-queries dominate; placement what-ifs are a side
        # stream (the what-if scorer batches its own traffic anyway).
        hot_fraction=0.125,
        hot_weight=0.8,
        whatif_fraction=0.1,
        key_fn=server_class_key,
    )
    return scenario, registry, trace


def test_serving_frontend_throughput():
    """Acceptance: ≥5× wall-clock speedup over per-request serving at
    128 servers (≥3× at smoke scale), bit-identical answers, and every
    queue wait inside the latency budget."""
    scenario, registry, trace = _build_workload()

    naive_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        psi_naive, naive_ledger = serve_naive(registry, trace)
        naive_s = min(naive_s, time.perf_counter() - start)

    frontend_s = float("inf")
    for _ in range(REPEATS):
        frontend = PredictionFrontend(registry, CONFIG)  # cold cache per repeat
        start = time.perf_counter()
        tickets = serve_trace(frontend, trace)
        frontend_s = min(frontend_s, time.perf_counter() - start)

    psi_frontend = np.array([t.psi_stable_c for t in tickets])
    assert np.array_equal(psi_frontend, psi_naive)

    summary = frontend.ledger.summary()
    waits = frontend.ledger.queue_waits_s()
    assert np.all(waits <= CONFIG.max_wait_s + 1e-12)
    speedup = naive_s / frontend_s

    lines = [
        f"{'servers':>8} {'requests':>9} {'naive s':>9} {'frontend s':>11} "
        f"{'speedup':>8}",
        f"{scenario.n_servers:>8} {trace.n_requests:>9} {naive_s:>9.3f} "
        f"{frontend_s:>11.3f} {speedup:>7.1f}x",
        (
            f"virtual: p50 {summary['p50_latency_s'] * 1e3:.1f} ms, "
            f"p99 {summary['p99_latency_s'] * 1e3:.1f} ms, "
            f"mean batch {summary['mean_batch_size']:.1f}, "
            f"cache hit {summary['cache_hit_rate'] * 100:.1f}%"
        ),
        (
            f"floor: {SPEEDUP_FLOOR:.0f}x"
            + (" (smoke scale)" if SMOKE else " at 128 servers")
        ),
    ]
    record_table(
        "serving front-end (micro-batched vs per-request)", "\n".join(lines)
    )
    record_json(
        "BENCH_serving_frontend.json",
        {
            "benchmark": "serving-frontend",
            "smoke": SMOKE,
            "n_servers": scenario.n_servers,
            "n_requests": trace.n_requests,
            "arrival_rate_per_s": RATE_PER_S,
            "max_batch": CONFIG.max_batch,
            "max_wait_s": CONFIG.max_wait_s,
            "naive_walltime_s": round(naive_s, 4),
            "frontend_walltime_s": round(frontend_s, 4),
            "speedup": round(speedup, 2),
            "speedup_floor": SPEEDUP_FLOOR,
            "naive_p50_latency_s": round(
                naive_ledger.percentile_latency_s(50.0), 6
            ),
            "p50_latency_s": round(summary["p50_latency_s"], 6),
            "p99_latency_s": round(summary["p99_latency_s"], 6),
            "mean_queue_wait_s": round(summary["mean_queue_wait_s"], 6),
            "mean_batch_size": round(summary["mean_batch_size"], 2),
            "cache_hit_rate": round(summary["cache_hit_rate"], 4),
            "unique_computed": summary["unique_computed"],
            "n_batches": summary["n_batches"],
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"micro-batched serving speedup {speedup:.1f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x floor (naive {naive_s:.3f}s vs frontend "
        f"{frontend_s:.3f}s)"
    )
