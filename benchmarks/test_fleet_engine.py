"""Fleet thermal engine benchmarks.

Documents the headline claim of the vectorized co-simulation path: at
128 servers the fleet engine advances the whole cluster ≥10× faster than
the seed per-server loop, with bit-identical thermal trajectories. Also
records raw plant-step throughput (engine vs. scalar plants) and the
large-scale scenario walltimes, writing the numbers to
``benchmark_results/`` via the shared reporting hook.
"""

import time

import numpy as np

from benchmarks.conftest import record_table
from repro.datacenter.cluster import Cluster
from repro.datacenter.server import Server
from repro.datacenter.simulation import DatacenterSimulation
from repro.experiments.scenarios import (
    build_fleet_simulation,
    diurnal_fleet_scenario,
    migration_storm_scenario,
)
from repro.rng import RngFactory
from repro.thermal.fleet import FleetThermalEngine
from tests.conftest import make_server_spec, make_vm

N_SERVERS = 128
DURATION_S = 60.0


def build_cosim(use_fleet: bool, n_servers: int = N_SERVERS) -> DatacenterSimulation:
    cluster = Cluster("bench")
    for i in range(n_servers):
        server = Server(make_server_spec(name=f"s{i}"))
        for j in range(4):
            server.host_vm(make_vm(f"vm-{i}-{j}", vcpus=2, level=0.6))
        cluster.add_server(server)
    return DatacenterSimulation(
        cluster=cluster, rng=RngFactory(1), use_fleet_engine=use_fleet
    )


def _best_of(n_rounds: int, builder, duration_s: float = DURATION_S):
    best = float("inf")
    sim = None
    for _ in range(n_rounds):
        sim = builder()
        start = time.perf_counter()
        sim.run(duration_s)
        best = min(best, time.perf_counter() - start)
    return best, sim


def test_fleet_engine_speedup_128_servers():
    """Acceptance: ≥10× co-simulation step throughput at 128 servers, with
    matching trajectories."""
    seed_elapsed, seed_sim = _best_of(2, lambda: build_cosim(False))
    fleet_elapsed, fleet_sim = _best_of(3, lambda: build_cosim(True))
    speedup = seed_elapsed / fleet_elapsed

    seed_temps = np.array(
        [s.thermal.cpu_temperature_c for s in seed_sim.cluster.servers]
    )
    fleet_temps = np.array(
        [s.thermal.cpu_temperature_c for s in fleet_sim.cluster.servers]
    )
    max_divergence = float(np.max(np.abs(seed_temps - fleet_temps)))

    steps = int(DURATION_S)
    rows = [
        f"{'path':<22}{'walltime':>12}{'server-steps/s':>18}",
        f"{'per-server loop':<22}{seed_elapsed * 1e3:>10.1f}ms"
        f"{N_SERVERS * steps / seed_elapsed:>18,.0f}",
        f"{'fleet engine':<22}{fleet_elapsed * 1e3:>10.1f}ms"
        f"{N_SERVERS * steps / fleet_elapsed:>18,.0f}",
        "",
        f"speedup: {speedup:.1f}x (acceptance: >= 10x)",
        f"max trajectory divergence: {max_divergence:.3g} degC (tolerance 1e-9)",
    ]
    record_table(
        f"fleet engine: co-simulation throughput ({N_SERVERS} servers)",
        "\n".join(rows),
    )

    assert max_divergence <= 1e-9
    assert speedup >= 10.0, f"fleet engine speedup {speedup:.1f}x below 10x"


def test_fleet_step_rate_128_servers(benchmark):
    """pytest-benchmark record of the fleet path (1 simulated minute)."""

    def run_minute():
        sim = build_cosim(True)
        sim.run(DURATION_S)
        return sim

    sim = benchmark(run_minute)
    assert sim.time_s == DURATION_S


def test_raw_engine_step_throughput(benchmark):
    """Plant-only: one vectorized step for 128 servers vs 128 scalar steps."""
    cluster = Cluster("plant")
    for i in range(N_SERVERS):
        cluster.add_server(Server(make_server_spec(name=f"s{i}")))
    engine = FleetThermalEngine(cluster.servers)
    utilization = np.full(N_SERVERS, 0.7)

    def thousand_steps():
        for _ in range(1000):
            engine.step(1.0, utilization, 22.0)

    benchmark(thousand_steps)
    assert float(engine.cpu_temperatures()[0]) > 22.0


def test_scenario_walltimes_recorded():
    """Large-scale scenarios run end to end; walltimes are recorded."""
    diurnal = build_fleet_simulation(
        diurnal_fleet_scenario(n_servers=N_SERVERS, seed=90_000)
    )
    start = time.perf_counter()
    diurnal.run(600.0)
    diurnal_elapsed = time.perf_counter() - start

    storm = build_fleet_simulation(
        migration_storm_scenario(n_servers=64, seed=91_000)
    )
    start = time.perf_counter()
    storm.run(1200.0)
    storm_elapsed = time.perf_counter() - start

    migrated = sum(
        1
        for i in range(32)
        if f"migrant-{i:03d}" in storm.cluster.server(f"server-{i + 32:03d}").vms
    )
    rows = [
        f"{'scenario':<34}{'sim time':>10}{'walltime':>12}",
        f"{'diurnal fleet (128 servers)':<34}{'600 s':>10}"
        f"{diurnal_elapsed * 1e3:>10.0f}ms",
        f"{'migration storm (64 servers)':<34}{'1200 s':>10}"
        f"{storm_elapsed * 1e3:>10.0f}ms",
        "",
        f"storm migrations completed: {migrated}/32",
    ]
    record_table("fleet engine: large-scale scenario walltimes", "\n".join(rows))
    assert diurnal.time_s == 600.0
    assert migrated == 32
