"""Benchmark: scenario-fuzz throughput and invariant-check coverage.

How fast can the declarative path sample + compile + run fuzzed
scenarios under the full invariant harness? The nightly CI job sweeps
200 seeds with ``--strict``; this benchmark records the sustained
scenarios-per-second of the same pipeline and pins a modest floor so a
compiler or harness regression that makes the sweep 10x slower fails
loudly rather than silently stretching the nightly wall clock.

``SCENARIO_BENCH_SMOKE=1`` shrinks the sweep for CI.
"""

import os
import time

from repro.experiments.reporting import ascii_table
from repro.scenarios import ScenarioFuzzer, run_with_invariants

from benchmarks.conftest import record_table

SMOKE = bool(os.environ.get("SCENARIO_BENCH_SMOKE"))
N_COMPILE = 40 if SMOKE else 200
N_RUN = 6 if SMOKE else 40
#: Sustained end-to-end floor (sample + compile + simulate + check).
RUNS_PER_S_FLOOR = 1.0 if SMOKE else 2.0


def test_scenario_fuzz_throughput(benchmark):
    fuzzer = ScenarioFuzzer()

    def run():
        compile_started = time.perf_counter()
        for seed in range(N_COMPILE):
            fuzzer.scenario(seed)
        compile_elapsed = time.perf_counter() - compile_started

        run_started = time.perf_counter()
        reports = [
            run_with_invariants(fuzzer.scenario(seed), check_interval_s=120.0)
            for seed in range(N_RUN)
        ]
        run_elapsed = time.perf_counter() - run_started
        return compile_elapsed, run_elapsed, reports

    compile_elapsed, run_elapsed, reports = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    checks = sum(r.checks for r in reports)
    violations = [v for r in reports for v in r.violations]
    compile_rate = N_COMPILE / compile_elapsed
    run_rate = N_RUN / run_elapsed
    record_table(
        "Scenario fuzz throughput (sample + compile + invariant run)",
        ascii_table(
            ["stage", "n", "rate"],
            [
                ("compile only", N_COMPILE, f"{compile_rate:,.0f}/s"),
                ("end-to-end run", N_RUN, f"{run_rate:,.1f}/s"),
                ("invariant checks", checks, "-"),
            ],
        ),
    )

    assert violations == [], violations
    assert checks > 0
    assert run_rate >= RUNS_PER_S_FLOOR
