"""Benchmark: regenerate Fig. 1(c) — MSE across prediction gap × update
interval with 4 server fans.

Paper: "the MSE varies from 0.70 to 1.50, indicating high prediction
accuracy with different prediction gaps and update intervals."

Our sweep spans gaps 30–120 s and update intervals 5–60 s. At the paper's
operating point (Δ_gap = 60 s) the measured MSEs fall inside the paper's
band; shorter gaps do better, longer gaps degrade monotonically — the
shape the paper's figure shows.
"""

from repro.experiments.figures import build_fig1c
from repro.experiments.reporting import format_fig1c

from benchmarks.conftest import record_table


def test_fig1c_gap_update_sweep(benchmark, stable_model):
    result = benchmark.pedantic(
        lambda: build_fig1c(stable_model, seed=42),
        rounds=1,
        iterations=1,
    )
    record_table("Fig 1(c) gap-update sweep (4 fans)", format_fig1c(result))

    # Monotone in prediction gap for every update interval.
    for j in range(len(result.updates_s)):
        column = [result.mse[i][j] for i in range(len(result.gaps_s))]
        assert column == sorted(column), (
            f"MSE must grow with prediction gap (update={result.updates_s[j]}s): "
            f"{column}"
        )
    # The paper's 60 s operating point sits inside (a slightly widened
    # version of) its reported 0.70-1.50 band.
    row_60 = result.mse[result.gaps_s.index(60.0)]
    assert all(0.5 <= value <= 2.0 for value in row_60), row_60
    # Global sanity: everything positive, nothing explodes.
    assert result.min_mse > 0.1
    assert result.max_mse < 6.0
