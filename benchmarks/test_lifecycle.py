"""Model-lifecycle benchmarks: retrain throughput, swap latency, drift payoff.

Documents the lifecycle-layer headline claims:

* a lifecycle retraining round (every stale class refit in **one**
  lockstep :func:`~repro.svm.smo.solve_svr_dual_batch` call, then
  atomically swapped) runs ≥4× faster than sequential per-class cold
  ``EpsilonSVR.fit`` trains at the same hyper-parameters — and publishes
  bit-identical models;
* an atomic registry swap is cheap enough to run inside a control
  interval (bounded sub-10 ms latency);
* on the 128-server ``model-drift`` scenario (seasonal ambient ramp +
  VM-flavor shift) the drift-aware lifecycle ends the run with strictly
  lower windowed forecast MAE than the frozen-model baseline, at
  identical physics (no mitigation policy in either arm).

``LIFECYCLE_BENCH_SMOKE=1`` shrinks all three arms for CI (smaller
fleet, shorter drift run, relaxed 2× retrain floor — tiny problems
leave the solver mostly in Python overhead, understating the batching
win).
"""

import copy
import os
import time

import numpy as np

from benchmarks.conftest import record_table
from repro.control import run_closed_loop
from repro.experiments.scenarios import (
    class_balanced_fleet_scenario,
    model_drift_scenario,
)
from repro.lifecycle import ModelLifecycle, Retrainer
from repro.lifecycle.planner import ClassRecordSet, RetrainPlan
from repro.svm.svr import EpsilonSVR
from repro.training import (
    FleetTrainingConfig,
    profile_fleet,
    server_class_key,
    train_fleet_registry,
)
from tests.training.test_fleet_trainer import synthetic_profile

SMOKE = bool(os.environ.get("LIFECYCLE_BENCH_SMOKE"))
#: Retrain-round arm: stale classes × fresh records per class.
N_CLASSES = 8 if SMOKE else 16
RECORDS_PER_CLASS = 30 if SMOKE else 60
RETRAIN_SPEEDUP_FLOOR = 2.0 if SMOKE else 4.0
REPEATS = 1 if SMOKE else 2
#: Swap-latency arm.
N_SWAPS = 50 if SMOKE else 200
SWAP_MEAN_BOUND_MS = 10.0
#: Drift-scorecard arm: classes × servers per class, drift-run seconds.
DRIFT_CLASSES = 3 if SMOKE else 4
DRIFT_PER_CLASS = 8 if SMOKE else 32
DRIFT_DURATION_S = 5400.0 if SMOKE else 7200.0
MAE_WINDOW = 20


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _registry_and_plan():
    """A trained per-class registry plus a fresh-records retrain plan.

    The registry is trained on one synthetic campaign; the plan carries
    a *drifted* record set per class (different seed) — the shape of a
    real lifecycle round, without paying two co-simulations here.
    """
    campaign = synthetic_profile(
        records_per_class=RECORDS_PER_CLASS, n_classes=N_CLASSES, seed=7
    )
    config = FleetTrainingConfig(
        n_splits=5,
        c_grid=(8.0, 64.0),
        gamma_grid=(0.03125, 0.125),
        epsilon_grid=(0.125,),
        min_class_records=4,
    )
    report = train_fleet_registry(campaign, config)
    drifted = synthetic_profile(
        records_per_class=RECORDS_PER_CLASS, n_classes=N_CLASSES, seed=1234
    )
    groups = drifted.classes()
    plan = RetrainPlan(
        time_s=3600.0,
        window_s=1800.0,
        classes=tuple(
            ClassRecordSet(
                key=key,
                server_names=tuple(drifted.names[i] for i in indices),
                records=tuple(
                    # +4 °C on every label: the ambient-drift analogue,
                    # so the publish gate sees a real improvement.
                    drifted.records[i].with_output(
                        drifted.records[i].psi_stable_c + 4.0
                    )
                    for i in indices
                ),
            )
            for key, indices in groups.items()
        ),
        skipped=(),
    )
    return report.registry, plan


def test_retrain_round_speedup_vs_sequential_cold_trains():
    """Acceptance: one lockstep retrain round ≥4× vs per-class cold fits.

    Both arms do identical work — per class, the publish gate's k-fold
    validation fits plus the full refit at the deployed
    hyper-parameters. The sequential arm pays one cold
    ``EpsilonSVR.fit`` per problem; the lifecycle round stacks every
    fold of every class into one lockstep batch.
    """
    registry, plan = _registry_and_plan()
    n_splits = Retrainer(registry).config.validation_splits

    def sequential():
        """Per-class cold validation + refit trains — the baseline a
        registry without the batched retrainer pays."""
        from repro.svm.cv import KFold

        models = {}
        for record_set in plan.classes:
            entry = registry.resolve(record_set.key)
            records = list(record_set.records)
            x = entry.scaler.transform(entry.extractor.matrix(records))
            y = entry.extractor.targets(records)

            def cold(x_rows, y_rows):
                return EpsilonSVR(
                    kernel=entry.model.kernel,
                    c=entry.model.c,
                    epsilon=entry.model.epsilon,
                    max_iter=50_000,
                ).fit(x_rows, y_rows)

            squared_sum = 0.0
            for train_idx, val_idx in KFold(n_splits, rng=None).split(
                y.shape[0]
            ):
                fold = cold(x[train_idx], y[train_idx])
                residual = np.atleast_1d(fold.predict(x[val_idx])) - y[val_idx]
                squared_sum += float(residual @ residual)
            deployed = np.atleast_1d(entry.model.predict(x))
            improved = squared_sum / y.shape[0] <= float(
                np.mean((deployed - y) ** 2)
            )
            if improved:
                models[record_set.key] = cold(x, y)
        return models

    # Both arms take best-of-REPEATS so the speedup measures batching,
    # not timing noise caught by one arm only.
    seq_models, seq_elapsed = _timed(sequential)

    def batched():
        live = copy.deepcopy(registry)
        return live, Retrainer(live).retrain(plan)

    (live_registry, round_), batch_elapsed = _timed(batched)
    speedup = seq_elapsed / batch_elapsed

    # Parity: the lockstep refits publish bit-identical models.
    identical = True
    for record_set in plan.classes:
        entry = live_registry.resolve(record_set.key)
        records = list(record_set.records)
        x = entry.scaler.transform(entry.extractor.matrix(records))
        identical &= bool(
            np.array_equal(
                np.atleast_1d(entry.model.predict(x)),
                np.atleast_1d(seq_models[record_set.key].predict(x)),
            )
        )

    rows = [
        f"{N_CLASSES} stale classes x {RECORDS_PER_CLASS} fresh records, "
        "deployed (C, gamma, epsilon)",
        "",
        f"{'path':<44}{'walltime':>12}",
        f"{'sequential per-class cold trains':<44}{seq_elapsed * 1e3:>10.1f}ms",
        f"{'lifecycle round (lockstep batch + swaps)':<44}"
        f"{batch_elapsed * 1e3:>10.1f}ms",
        "",
        f"classes retrained: {round_.n_retrained}/{N_CLASSES}",
        f"bit-identical models: {identical}",
        f"speedup: {speedup:.1f}x (acceptance: >= "
        f"{RETRAIN_SPEEDUP_FLOOR:.0f}x{', smoke scale' if SMOKE else ''})",
    ]
    record_table("lifecycle: retrain round throughput", "\n".join(rows))
    assert round_.n_retrained == N_CLASSES
    assert identical, "lockstep retrain diverged from sequential fits"
    assert speedup >= RETRAIN_SPEEDUP_FLOOR, (
        f"retrain round speedup {speedup:.1f}x below "
        f"{RETRAIN_SPEEDUP_FLOOR:.0f}x"
    )


def test_swap_latency_bounded():
    """Acceptance: publishing a model version stays in control-interval
    noise (mean < 10 ms) — a swap is a snapshot plus one list append."""
    registry, plan = _registry_and_plan()
    record_set = plan.classes[0]
    entry = registry.resolve(record_set.key)
    records = list(record_set.records)
    x = entry.scaler.transform(entry.extractor.matrix(records))
    y = entry.extractor.targets(records)
    fresh = EpsilonSVR(
        kernel=entry.model.kernel,
        c=entry.model.c,
        epsilon=entry.model.epsilon,
        max_iter=50_000,
    ).fit(x, y)

    latencies = []
    for _ in range(N_SWAPS):
        start = time.perf_counter()
        registry.swap_model(record_set.key, fresh)
        latencies.append(time.perf_counter() - start)
        # Each iteration swaps a *new* snapshot source so the dedup
        # cache cannot short-circuit the copy after the first round.
        fresh = copy.deepcopy(fresh)
    latencies_ms = np.asarray(latencies) * 1e3
    mean_ms = float(latencies_ms.mean())
    p95_ms = float(np.percentile(latencies_ms, 95))
    worst_ms = float(latencies_ms.max())

    rows = [
        f"{N_SWAPS} swaps of a {fresh.n_support}-SV class model",
        "",
        f"mean   {mean_ms:8.3f} ms",
        f"p95    {p95_ms:8.3f} ms",
        f"max    {worst_ms:8.3f} ms",
        "",
        f"served version after run: v{registry.current_version(record_set.key)}",
        f"acceptance: mean < {SWAP_MEAN_BOUND_MS:.0f} ms",
    ]
    record_table("lifecycle: swap latency", "\n".join(rows))
    assert registry.current_version(record_set.key) == 1 + N_SWAPS
    assert mean_ms < SWAP_MEAN_BOUND_MS, (
        f"mean swap latency {mean_ms:.2f} ms over {SWAP_MEAN_BOUND_MS} ms"
    )


def test_model_drift_scorecard_lifecycle_vs_frozen():
    """Acceptance: on the model-drift fleet the lifecycle-managed run ends
    with strictly lower windowed forecast MAE and no more sustained
    hotspots than the frozen-model baseline."""
    seed = 92_000
    n_servers = DRIFT_CLASSES * DRIFT_PER_CLASS
    campaign = class_balanced_fleet_scenario(
        n_classes=DRIFT_CLASSES, servers_per_class=DRIFT_PER_CLASS,
        seed=seed, duration_s=3600.0,
    )
    config = FleetTrainingConfig(
        n_splits=5,
        c_grid=(8.0, 64.0),
        gamma_grid=(0.03125, 0.125),
        epsilon_grid=(0.125,),
        min_class_records=4,
    )
    train_started = time.perf_counter()
    report = train_fleet_registry(profile_fleet(campaign), config)
    train_elapsed = time.perf_counter() - train_started
    key_fn = lambda server: server_class_key(server.spec)  # noqa: E731

    scenario = model_drift_scenario(
        n_classes=DRIFT_CLASSES, servers_per_class=DRIFT_PER_CLASS,
        seed=seed, duration_s=DRIFT_DURATION_S,
    )
    frozen, frozen_elapsed = _timed(
        lambda: run_closed_loop(
            scenario, report.registry, policy=None, key_fn=key_fn
        ),
        repeats=1,
    )
    live_registry = copy.deepcopy(report.registry)
    lifecycle = ModelLifecycle(live_registry)
    managed, managed_elapsed = _timed(
        lambda: run_closed_loop(
            scenario, live_registry, policy=None, key_fn=key_fn,
            lifecycle=lifecycle,
        ),
        repeats=1,
    )

    frozen_mae = frozen.ledger.windowed_forecast_error_c(MAE_WINDOW)
    managed_mae = managed.ledger.windowed_forecast_error_c(MAE_WINDOW)
    frozen_sustained = len(frozen.ledger.sustained_hotspots())
    managed_sustained = len(managed.ledger.sustained_hotspots())
    life = lifecycle.summary()

    rows = [
        f"{n_servers} servers ({DRIFT_CLASSES} classes), "
        f"{DRIFT_DURATION_S:.0f}s drift run (ambient ramp + flavor shift), "
        f"training {train_elapsed:.1f}s",
        "",
        f"{'run':<12}{'MAE last ' + str(MAE_WINDOW):>16}{'MAE all':>10}"
        f"{'sustained':>11}{'walltime':>11}",
        f"{'frozen':<12}{frozen_mae:>15.3f} {frozen.ledger.mean_forecast_error_c():>9.3f} "
        f"{frozen_sustained:>10} {frozen_elapsed:>9.1f}s",
        f"{'lifecycle':<12}{managed_mae:>15.3f} "
        f"{managed.ledger.mean_forecast_error_c():>9.3f} "
        f"{managed_sustained:>10} {managed_elapsed:>9.1f}s",
        "",
        f"retrain rounds: {life['rounds']:.0f}, models published: "
        f"{life['models_published']:.0f} over "
        f"{life['classes_retrained']:.0f}/{DRIFT_CLASSES} classes "
        f"({life['retrain_seconds_total']:.2f}s retraining)",
        "acceptance: lifecycle MAE strictly below frozen, sustained "
        "hotspots no worse",
    ]
    record_table(
        "lifecycle: model-drift retrained vs frozen scorecard", "\n".join(rows)
    )
    assert np.isfinite(frozen_mae) and np.isfinite(managed_mae)
    assert life["models_published"] >= DRIFT_CLASSES
    assert managed_mae < frozen_mae, (
        f"lifecycle MAE {managed_mae:.3f} not below frozen {frozen_mae:.3f}"
    )
    assert managed_sustained <= frozen_sustained
