"""Ablation: pre-defined curve constants (t_break and curvature δ).

Eq. (1) fixes t_break = 600 s "deduced from experiments" and Eq. (3)'s
log curvature is reconstructed with δ = 0.05 (DESIGN.md §1). This
ablation sweeps both on the dynamic case study: the paper's operating
point should be near-optimal, and extreme values visibly worse —
evidence that the constants are load-bearing, not decorative.
"""

from repro.config import PredictionConfig
from repro.experiments.figures import build_fig1b
from repro.experiments.reporting import ascii_table

from benchmarks.conftest import record_table

T_BREAKS = (150.0, 300.0, 600.0, 1200.0)
DELTAS = (0.005, 0.02, 0.05, 0.2, 1.0)


def test_ablation_curve_constants(benchmark, stable_model):
    def run():
        t_break_scores = {}
        for t_break in T_BREAKS:
            config = PredictionConfig(t_break_s=t_break)
            t_break_scores[t_break] = build_fig1b(
                stable_model, seed=42, config=config
            ).mse_calibrated
        delta_scores = {}
        for delta in DELTAS:
            config = PredictionConfig(curve_delta=delta)
            delta_scores[delta] = build_fig1b(
                stable_model, seed=42, config=config
            ).mse_calibrated
        return t_break_scores, delta_scores

    t_break_scores, delta_scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [(f"t_break={t:.0f}s" + (" (paper)" if t == 600.0 else ""), mse)
            for t, mse in t_break_scores.items()]
    rows += [(f"delta={d:g}" + (" (ours)" if d == 0.05 else ""), mse)
             for d, mse in delta_scores.items()]
    record_table(
        "Ablation: curve constants (dynamic MSE, Fig 1(b) scenario)",
        ascii_table(["constant", "dynamic MSE"], rows),
    )

    # The paper's t_break=600 must be within 25% of the sweep's best.
    best_t = min(t_break_scores.values())
    assert t_break_scores[600.0] <= 1.25 * best_t
    # Our δ=0.05 reconstruction must likewise be near-optimal.
    best_d = min(delta_scores.values())
    assert delta_scores[0.05] <= 1.25 * best_d
    # All sweep points remain finite and positive.
    for value in list(t_break_scores.values()) + list(delta_scores.values()):
        assert 0.0 < value < 10.0
