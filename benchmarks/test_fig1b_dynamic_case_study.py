"""Benchmark: regenerate Fig. 1(b) — dynamic prediction case study.

Paper: "dynamic CPU temperature modeling with calibration at run time
produces a lower MSE" against empirical data, in a scenario where the VM
set changes at runtime (here: a live migration lands mid-run).
"""

from repro.experiments.figures import build_fig1b
from repro.experiments.reporting import format_fig1b

from benchmarks.conftest import record_table


def test_fig1b_dynamic_case_study(benchmark, stable_model):
    result = benchmark.pedantic(
        lambda: build_fig1b(stable_model, seed=42),
        rounds=1,
        iterations=1,
    )
    record_table("Fig 1(b) dynamic case study", format_fig1b(result))

    # Paper shape: calibration wins.
    assert result.calibration_wins
    assert result.mse_calibrated < 0.9 * result.mse_uncalibrated, (
        "calibration should win by a clear margin, got "
        f"{result.mse_calibrated:.3f} vs {result.mse_uncalibrated:.3f}"
    )
    # Magnitudes in the plausible band around the paper's figures
    # (their dynamic MSEs are ≈0.7–1.6 in this regime).
    assert 0.2 < result.mse_calibrated < 2.5
    # The scenario is genuinely dynamic: the migration raises the target.
    assert result.psi_stable_after > result.psi_stable_before + 3.0
    assert result.migration_lands_s > 900.0
