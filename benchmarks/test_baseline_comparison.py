"""Benchmark: the paper's SVR vs prior-art baselines.

The paper's motivation (§I): task-temperature profiles [4] and RC circuit
models [5] "are unable to capture task resource heterogeneity within
multi-tenant environments". This benchmark quantifies that claim on the
same heterogeneous dataset: the VM-level SVR must beat both baselines by
a wide margin.
"""

from repro.core.baselines import RcFitBaseline, TaskProfileBaseline
from repro.core.pipeline import train_stable_predictor
from repro.experiments.reporting import ascii_table
from repro.rng import RngFactory

from benchmarks.conftest import record_table


def test_baseline_comparison(benchmark, labelled_records, heldout_records):
    def run():
        svr_report = train_stable_predictor(
            labelled_records,
            n_splits=5,
            c_grid=(64.0, 512.0, 4096.0),
            gamma_grid=(0.004, 0.02, 0.1),
            epsilon_grid=(0.125,),
            rng=RngFactory(3).stream("cv"),
        )
        task_profile = TaskProfileBaseline().fit(labelled_records)
        rc_fit = RcFitBaseline().fit(labelled_records)
        return {
            "SVR (paper, VM-level)": svr_report.predictor.evaluate(heldout_records),
            "Task profiles [4]": task_profile.evaluate(heldout_records),
            "RC circuit fit [5]": rc_fit.evaluate(heldout_records),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (name, m["mse"], m["rmse"], m["mae"], m["r2"])
        for name, m in results.items()
    ]
    record_table(
        "Baseline comparison (held-out records)",
        ascii_table(["model", "MSE", "RMSE", "MAE", "R2"], rows)
        + "\npaper claim: traditional approaches cannot capture multi-tenant "
        "heterogeneity",
    )

    svr = results["SVR (paper, VM-level)"]["mse"]
    profile = results["Task profiles [4]"]["mse"]
    rc = results["RC circuit fit [5]"]["mse"]
    # Paper shape: the VM-level model wins decisively against both.
    assert svr < profile / 10.0, f"SVR {svr:.2f} vs task profiles {profile:.2f}"
    assert svr < rc / 5.0, f"SVR {svr:.2f} vs RC fit {rc:.2f}"
    # And the baselines are still sane models (not strawmen): both beat a
    # wild guess and the RC fit captures the load trend.
    assert results["RC circuit fit [5]"]["r2"] > 0.3
