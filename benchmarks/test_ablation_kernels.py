"""Ablation: kernel / estimator choice for the stable model.

The paper fixes LIBSVM's RBF kernel. This ablation compares RBF against
linear and polynomial kernels and kernel ridge regression on identical
features and data, using CV MSE — justifying (or not) the paper's choice.
"""

import numpy as np

from repro.core.features import FeatureExtractor
from repro.experiments.reporting import ascii_table
from repro.rng import RngFactory
from repro.svm.cv import cross_val_mse
from repro.svm.kernels import LinearKernel, PolynomialKernel, RbfKernel
from repro.svm.ridge import KernelRidge
from repro.svm.scaling import MinMaxScaler
from repro.svm.svr import EpsilonSVR

from benchmarks.conftest import record_table


def test_ablation_kernels(benchmark, labelled_records):
    extractor = FeatureExtractor()
    x = MinMaxScaler().fit_transform(extractor.matrix(labelled_records))
    y = extractor.targets(labelled_records)

    candidates = {
        "SVR rbf (paper)": EpsilonSVR(
            kernel=RbfKernel(gamma=0.02), c=4096.0, epsilon=0.125,
            on_no_convergence="ignore",
        ),
        "SVR linear": EpsilonSVR(
            kernel=LinearKernel(), c=64.0, epsilon=0.125,
            on_no_convergence="ignore",
        ),
        "SVR poly(3)": EpsilonSVR(
            kernel=PolynomialKernel(degree=3, gamma=0.1, coef0=1.0),
            c=512.0, epsilon=0.125, on_no_convergence="ignore",
        ),
        "kernel ridge rbf": KernelRidge(kernel=RbfKernel(gamma=0.02), alpha=1e-3),
    }

    def run():
        return {
            name: cross_val_mse(
                model, x, y, n_splits=5, rng=RngFactory(11).stream(f"cv/{name}")
            )
            for name, model in candidates.items()
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = sorted(scores.items(), key=lambda kv: kv[1])
    record_table(
        "Ablation: kernel and estimator choice (5-fold CV MSE)",
        ascii_table(["model", "CV MSE"], rows),
    )

    best = min(scores.values())
    # The paper's choice must be at (or statistically near) the front:
    # within 2× of the best candidate, and clearly ahead of linear.
    assert scores["SVR rbf (paper)"] <= 2.0 * best
    assert scores["SVR rbf (paper)"] < scores["SVR linear"]
    assert np.isfinite(list(scores.values())).all()
