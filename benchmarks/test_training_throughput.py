"""Training subsystem benchmarks.

Documents the training-layer headline claims:

* the easygrid-style (C, γ, ε) search over the default 4×4×2 grid with
  10-fold CV runs ≥4× faster than the seed triple-nested loop (fresh
  estimator, fresh kernel evaluation per point and fold) — via shared
  per-fold Gram caches, the lockstep batched SMO, and warm starts along
  each C path;
* training a 16-class fleet registry (shared scaler + shared search +
  one batched refit pass) runs ≥4× faster than 16 sequential seed-style
  ``train_stable_predictor`` calls.

``TRAINING_BENCH_SMOKE=1`` shrinks both workloads to a 1-repeat smoke
(nightly CI) with a relaxed 2× floor — small problems leave the solver
mostly in Python overhead, which understates the speedup.
"""

import os
import time

import numpy as np

from benchmarks.conftest import record_table
from repro.core.features import FeatureExtractor
from repro.core.stable import StableTemperaturePredictor
from repro.svm.grid import (
    DEFAULT_C_GRID,
    DEFAULT_EPSILON_GRID,
    DEFAULT_GAMMA_GRID,
    grid_search_svr,
)
from repro.svm.scaling import MinMaxScaler
from repro.training.fleet_trainer import (
    FleetProfile,
    FleetTrainingConfig,
    train_fleet_registry,
)
from tests.training.seed_reference import seed_grid_search
from tests.training.test_fleet_trainer import synthetic_profile

SMOKE = bool(os.environ.get("TRAINING_BENCH_SMOKE"))
#: Records feeding the grid-search arm (subsampled from the session's
#: simulated dataset in smoke mode).
N_GRID_RECORDS = 40 if SMOKE else 120
#: Fleet registry arm: classes × records per class. The smoke shrink is
#: bounded from below: with only a dozen records per class the seed
#: baseline's per-class searches become trivially small and the shared
#: search's fixed cost dominates, understating the speedup.
N_CLASSES = 8 if SMOKE else 16
RECORDS_PER_CLASS = 30 if SMOKE else 60
N_SPLITS = 5 if SMOKE else 10
SPEEDUP_FLOOR = 2.0 if SMOKE else 4.0
REPEATS = 1 if SMOKE else 2


# -- seed-path baselines (shared replicas in tests/training) -----------------


def _seed_grid_search(x, y, n_splits=N_SPLITS, max_iter=50_000):
    """The seed loop over the default grids (rng=None), winner + score."""
    best, best_mse, _ = seed_grid_search(
        x, y, DEFAULT_C_GRID, DEFAULT_GAMMA_GRID, DEFAULT_EPSILON_GRID,
        n_splits=n_splits, max_iter=max_iter,
    )
    return best, best_mse


def _seed_train_stable_predictor(records, n_splits=N_SPLITS):
    """Seed-style train_stable_predictor: seed search + refit."""
    extractor = FeatureExtractor()
    x = extractor.matrix(records)
    y = extractor.targets(records)
    x_scaled = MinMaxScaler().fit_transform(x)
    best, _ = _seed_grid_search(x_scaled, y, n_splits=n_splits)
    return StableTemperaturePredictor(
        c=best[0], gamma=best[1], epsilon=best[2], extractor=extractor
    ).fit(records)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def test_grid_search_speedup_default_grid(labelled_records):
    """Acceptance: ≥4× over the seed loop on the default 4×4×2 grid.

    Runs on the simulated profiling dataset (synthetic records with
    near-duplicate feature patterns produce unrepresentative, extremely
    ill-conditioned SMO problems).
    """
    extractor = FeatureExtractor()
    records = labelled_records[:N_GRID_RECORDS]
    x_scaled = MinMaxScaler().fit_transform(extractor.matrix(records))
    y = extractor.targets(records)

    (seed_best, seed_mse), seed_elapsed = _timed(
        lambda: _seed_grid_search(x_scaled, y), repeats=1
    )
    default_result, default_elapsed = _timed(
        lambda: grid_search_svr(x_scaled, y, n_splits=N_SPLITS)
    )
    warm_result, warm_elapsed = _timed(
        lambda: grid_search_svr(x_scaled, y, n_splits=N_SPLITS, warm_start=True)
    )

    default_identical = (
        (default_result.best_c, default_result.best_gamma,
         default_result.best_epsilon) == seed_best
        and default_result.best_cv_mse == seed_mse
    )
    same_point = (
        warm_result.best_c, warm_result.best_gamma, warm_result.best_epsilon
    ) == seed_best
    speedup_default = seed_elapsed / default_elapsed
    speedup_warm = seed_elapsed / warm_elapsed
    rows = [
        f"{len(records)} records, {N_SPLITS}-fold CV, "
        f"{len(DEFAULT_C_GRID) * len(DEFAULT_GAMMA_GRID) * len(DEFAULT_EPSILON_GRID)}"
        " grid points",
        "",
        f"{'path':<38}{'walltime':>12}{'speedup':>10}",
        f"{'seed loop (per-point refits)':<38}{seed_elapsed:>10.2f}s{'1.0x':>10}",
        f"{'shared Gram + grid-wide batched SMO':<38}{default_elapsed:>10.2f}s"
        f"{speedup_default:>9.1f}x",
        f"{'warm-started C stages':<38}{warm_elapsed:>10.2f}s"
        f"{speedup_warm:>9.1f}x",
        "",
        f"default path bit-identical to seed: {default_identical}",
        f"warm start selects the same point:  {same_point}",
        f"acceptance: default path >= {SPEEDUP_FLOOR:.0f}x"
        f"{' (smoke scale)' if SMOKE else ''}",
    ]
    record_table("training: grid search throughput (default grid)", "\n".join(rows))
    assert default_identical, "default grid search diverged from the seed loop"
    assert same_point, "warm-started search selected a different grid point"
    assert speedup_default >= SPEEDUP_FLOOR, (
        f"grid search speedup {speedup_default:.1f}x below {SPEEDUP_FLOOR:.0f}x"
    )


def test_fleet_registry_training_speedup():
    """Acceptance: ≥4× for a 16-class registry vs 16 sequential trains."""
    profile: FleetProfile = synthetic_profile(
        records_per_class=RECORDS_PER_CLASS, n_classes=N_CLASSES, seed=7
    )
    groups = profile.classes()
    config = FleetTrainingConfig(
        n_splits=N_SPLITS, search_sample=160, min_class_records=4,
    )

    def sequential():
        registry = {}
        for key, indices in groups.items():
            class_records = [profile.records[i] for i in indices]
            registry[key] = _seed_train_stable_predictor(class_records)
        return registry

    def batched():
        return train_fleet_registry(profile, config)

    seq_registry, seq_elapsed = _timed(sequential, repeats=1)
    report, fleet_elapsed = _timed(batched)

    speedup = seq_elapsed / fleet_elapsed
    # Quality guard: the shared-search registry must predict its own
    # training records about as well as the per-class searches do.
    def registry_mse(predict):
        errors = []
        for key, indices in groups.items():
            class_records = [profile.records[i] for i in indices]
            actual = np.array([r.psi_stable_c for r in class_records])
            errors.append(float(np.mean((predict(key, class_records) - actual) ** 2)))
        return float(np.mean(errors))

    seq_mse = registry_mse(
        lambda key, recs: seq_registry[key].predict_many(recs)
    )
    fleet_mse = registry_mse(
        lambda key, recs: report.registry.resolve(key).predict_records(recs)
    )

    rows = [
        f"{N_CLASSES} classes x {RECORDS_PER_CLASS} records, "
        f"{N_SPLITS}-fold CV, default grids",
        "",
        f"{'path':<38}{'walltime':>12}{'train MSE':>12}",
        f"{'sequential train_stable_predictor':<38}{seq_elapsed:>10.2f}s"
        f"{seq_mse:>12.3f}",
        f"{'train_fleet_registry (batched)':<38}{fleet_elapsed:>10.2f}s"
        f"{fleet_mse:>12.3f}",
        "",
        f"speedup: {speedup:.1f}x (acceptance: >= {SPEEDUP_FLOOR:.0f}x"
        f"{', smoke scale' if SMOKE else ''})",
        f"classes with own model: {report.n_class_models}/{N_CLASSES}",
    ]
    record_table("training: fleet registry throughput", "\n".join(rows))
    assert report.n_class_models == N_CLASSES
    for spec_key in groups:
        assert spec_key in report.registry
    assert fleet_mse <= max(2.0 * seq_mse, seq_mse + 1.0), (
        f"shared-search registry lost accuracy: {fleet_mse:.3f} vs {seq_mse:.3f}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet training speedup {speedup:.1f}x below {SPEEDUP_FLOOR:.0f}x"
    )
