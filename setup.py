"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which build an editable wheel) fail; this
shim lets ``pip install -e .`` fall back to the legacy develop install.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
